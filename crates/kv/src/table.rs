use bytes::Bytes;

use crate::{KvError, PartId, RoutedKey, ScanControl};

/// A handle to one key/value table.
///
/// Handles are cheap to clone and safe to share; all methods may be called
/// from anywhere in the system.  The implementation decides whether a call
/// is local (collocated with the addressed part) or remote — remote calls
/// pay marshalling, which the store accounts for in its
/// [`StoreMetrics`](crate::StoreMetrics).
pub trait Table: Clone + Send + Sync + 'static {
    /// The table name, unique within its store.
    fn name(&self) -> &str;

    /// Number of parts (1 for ubiquitous tables).
    fn part_count(&self) -> u32;

    /// Whether the table is ubiquitous (small, replicated, locally readable
    /// everywhere).
    fn is_ubiquitous(&self) -> bool;

    /// Identifier of the table's partitioning; two tables report the same
    /// value iff they are consistently partitioned and co-placed (created
    /// via [`KvStore::create_table_like`](crate::KvStore::create_table_like)
    /// or from the same spec lineage).
    fn partitioning_id(&self) -> u64;

    /// Reads the value for `key`.
    ///
    /// # Errors
    ///
    /// Fails with [`KvError::TableDropped`], [`KvError::PartFailed`] or
    /// [`KvError::StoreClosed`] per the store's state.
    fn get(&self, key: &RoutedKey) -> Result<Option<Bytes>, KvError>;

    /// Writes `value` under `key`, returning the previous value if any.
    ///
    /// # Errors
    ///
    /// As for [`Table::get`].
    fn put(&self, key: RoutedKey, value: Bytes) -> Result<Option<Bytes>, KvError>;

    /// Removes `key`, returning whether it was present.
    ///
    /// # Errors
    ///
    /// As for [`Table::get`].
    fn delete(&self, key: &RoutedKey) -> Result<bool, KvError>;

    /// Total number of entries across all parts.
    ///
    /// # Errors
    ///
    /// As for [`Table::get`].
    fn len(&self) -> Result<usize, KvError>;

    /// Whether the table holds no entries.
    ///
    /// # Errors
    ///
    /// As for [`Table::get`].
    fn is_empty(&self) -> Result<bool, KvError> {
        Ok(self.len()? == 0)
    }

    /// Removes every entry.
    ///
    /// # Errors
    ///
    /// As for [`Table::get`].
    fn clear(&self) -> Result<(), KvError>;
}

/// Local access to the part-resident slices of co-partitioned tables,
/// handed to mobile code dispatched with
/// [`KvStore::run_at`](crate::KvStore::run_at) and to part/pair consumers.
///
/// All operations address tables *by name* and touch only the data of the
/// part the code is running at; they do no marshalling.  Ubiquitous tables
/// are readable (but not writable) through any part's view, honouring the
/// replication contract.
pub trait PartView {
    /// The part this view is anchored at.
    fn part(&self) -> PartId;

    /// Reads a key from the local slice of `table`.
    ///
    /// # Errors
    ///
    /// Fails with [`KvError::NotCopartitioned`] if `table` is not co-placed
    /// with the reference table of the dispatch, or [`KvError::NoSuchTable`].
    fn get(&self, table: &str, key: &RoutedKey) -> Result<Option<Bytes>, KvError>;

    /// Writes a key into the local slice of `table`, returning the previous
    /// value if any.
    ///
    /// # Errors
    ///
    /// As for [`PartView::get`]; additionally fails with
    /// [`KvError::UbiquityMismatch`] for ubiquitous tables, which are
    /// written through their [`Table`] handle instead.
    fn put(&self, table: &str, key: RoutedKey, value: Bytes) -> Result<Option<Bytes>, KvError>;

    /// Deletes a key from the local slice of `table`.
    ///
    /// # Errors
    ///
    /// As for [`PartView::put`].
    fn delete(&self, table: &str, key: &RoutedKey) -> Result<bool, KvError>;

    /// Enumerates the local pairs of `table` until `f` stops the scan.
    ///
    /// # Errors
    ///
    /// As for [`PartView::get`].
    fn scan(
        &self,
        table: &str,
        f: &mut dyn FnMut(&RoutedKey, &[u8]) -> ScanControl,
    ) -> Result<(), KvError>;

    /// Enumerates and *removes* the local pairs of `table` (the
    /// read-and-delete access pattern of the EBSP transport table).
    ///
    /// # Errors
    ///
    /// As for [`PartView::put`].
    fn drain(
        &self,
        table: &str,
        f: &mut dyn FnMut(RoutedKey, Bytes) -> ScanControl,
    ) -> Result<(), KvError>;

    /// Number of local pairs of `table`.
    ///
    /// # Errors
    ///
    /// As for [`PartView::get`].
    fn len(&self, table: &str) -> Result<usize, KvError>;
}
