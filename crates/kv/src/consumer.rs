use crate::{PartId, PartView, RoutedKey};

/// Whether an enumeration should keep going after a pair is consumed.
///
/// The paper's `PairConsumer` returns a boolean indicating whether the
/// enumeration should stop after processing a pair; this is the typed
/// equivalent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScanControl {
    /// Keep enumerating.
    Continue,
    /// Stop after this pair.
    Stop,
}

impl ScanControl {
    /// True when enumeration should continue.
    pub fn should_continue(self) -> bool {
        matches!(self, ScanControl::Continue)
    }
}

/// Callback for enumerating the parts of a table: mobile code that processes
/// one whole part locally, plus a combiner merging per-part results.
///
/// One clone of the consumer is dispatched to each part; the per-part
/// results are then merged pairwise with [`PartConsumer::combine`] in part
/// order.
pub trait PartConsumer: Clone + Send + 'static {
    /// The per-part (and combined) result type.
    type Output: Send + 'static;

    /// Processes one part, with local access to the table (and anything
    /// co-partitioned with it) through `view`.
    fn process(&mut self, part: PartId, view: &dyn PartView) -> Self::Output;

    /// Merges the results of two parts.
    fn combine(&self, a: Self::Output, b: Self::Output) -> Self::Output;
}

/// Callback for enumerating the key/value pairs of a table.
///
/// One clone runs per part: [`PairConsumer::setup`] first, then
/// [`PairConsumer::pair`] for each local pair (until one returns
/// [`ScanControl::Stop`]), then [`PairConsumer::finish`], whose result is
/// combined with its peers from other parts via [`PairConsumer::combine`].
pub trait PairConsumer: Clone + Send + 'static {
    /// The per-part (and combined) result type.
    type Output: Send + 'static;

    /// Per-part setup, called before the first pair of the part.
    fn setup(&mut self, part: PartId) {
        let _ = part;
    }

    /// Consumes one key/value pair.
    fn pair(&mut self, key: &RoutedKey, value: &[u8]) -> ScanControl;

    /// Per-part finalize; the result is combined with its peers.
    fn finish(&mut self, part: PartId) -> Self::Output;

    /// Merges the results of two parts.
    fn combine(&self, a: Self::Output, b: Self::Output) -> Self::Output;
}

/// A [`PairConsumer`] built from a plain function, for side-effect-free
/// scans that accumulate into a vector of per-pair results.
///
/// # Examples
///
/// ```no_run
/// use ripple_kv::FnPairConsumer;
///
/// let consumer = FnPairConsumer::new(|key, value| (key.body().len(), value.len()));
/// # let _ = consumer;
/// ```
#[derive(Debug)]
pub struct FnPairConsumer<F, T> {
    f: F,
    acc: Vec<T>,
}

impl<F: Clone, T> Clone for FnPairConsumer<F, T> {
    fn clone(&self) -> Self {
        // Clones start with an empty accumulator: each part gets a fresh one.
        Self {
            f: self.f.clone(),
            acc: Vec::new(),
        }
    }
}

impl<F, T> FnPairConsumer<F, T>
where
    F: FnMut(&RoutedKey, &[u8]) -> T + Clone + Send + 'static,
    T: Send + 'static,
{
    /// Wraps `f`; each pair's result is pushed onto the output vector.
    pub fn new(f: F) -> Self {
        Self { f, acc: Vec::new() }
    }
}

impl<F, T> PairConsumer for FnPairConsumer<F, T>
where
    F: FnMut(&RoutedKey, &[u8]) -> T + Clone + Send + 'static,
    T: Send + 'static,
{
    type Output = Vec<T>;

    fn pair(&mut self, key: &RoutedKey, value: &[u8]) -> ScanControl {
        let item = (self.f)(key, value);
        self.acc.push(item);
        ScanControl::Continue
    }

    fn finish(&mut self, _part: PartId) -> Vec<T> {
        std::mem::take(&mut self.acc)
    }

    fn combine(&self, mut a: Vec<T>, mut b: Vec<T>) -> Vec<T> {
        a.append(&mut b);
        a
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    #[test]
    fn scan_control_predicates() {
        assert!(ScanControl::Continue.should_continue());
        assert!(!ScanControl::Stop.should_continue());
    }

    #[test]
    fn fn_pair_consumer_accumulates_and_combines() {
        let mut c = FnPairConsumer::new(|_k: &RoutedKey, v: &[u8]| v.len());
        let k = RoutedKey::from_body(Bytes::from_static(b"k"));
        assert_eq!(c.pair(&k, b"abc"), ScanControl::Continue);
        assert_eq!(c.pair(&k, b"de"), ScanControl::Continue);
        let left = c.finish(PartId(0));
        let mut c2 = c.clone();
        c2.pair(&k, b"f");
        let right = c2.finish(PartId(1));
        assert_eq!(c.combine(left, right), vec![3, 2, 1]);
    }
}
