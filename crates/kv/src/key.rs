use std::fmt;

use bytes::Bytes;
use ripple_wire::{ByteReader, ByteWriter, Decode, Encode, WireError};

/// Identifier of one part (partition) of a table: successive integers
/// starting at 0, as in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PartId(pub u32);

impl PartId {
    /// The part index as a `usize`, for indexing part arrays.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for PartId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "part#{}", self.0)
    }
}

impl Encode for PartId {
    fn encode(&self, w: &mut ByteWriter) {
        self.0.encode(w);
    }
}

impl Decode for PartId {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, WireError> {
        Ok(PartId(u32::decode(r)?))
    }
}

/// 64-bit FNV-1a hash, the store's default key-to-part hash.
///
/// # Examples
///
/// ```
/// assert_ne!(ripple_kv::fnv64(b"a"), ripple_kv::fnv64(b"b"));
/// ```
pub fn fnv64(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash = OFFSET;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(PRIME);
    }
    hash
}

/// A stored key: an explicit 64-bit *route* plus the encoded key body.
///
/// The route decides placement — a key lands in part `route % parts`.  The
/// paper's phrase is that "the table client can control the assignment of
/// keys to parts by controlling the hash values of its keys"; most clients
/// use [`RoutedKey::from_body`], which hashes the body, while infrastructure
/// like the K/V EBSP transport table uses [`RoutedKey::with_route`] to aim a
/// key at a specific destination part.
///
/// # Examples
///
/// ```
/// use ripple_kv::RoutedKey;
///
/// let k = RoutedKey::from_body("vertex-17".as_bytes().to_vec().into());
/// let aimed = RoutedKey::with_route(3, k.body().clone());
/// assert_eq!(aimed.part_for(6).0, 3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RoutedKey {
    route: u64,
    body: Bytes,
}

impl RoutedKey {
    /// Creates a key whose route is the FNV-1a hash of its body — the
    /// ordinary case.
    pub fn from_body(body: Bytes) -> Self {
        let route = fnv64(&body);
        Self { route, body }
    }

    /// Creates a key with an explicitly chosen route, overriding placement.
    pub fn with_route(route: u64, body: Bytes) -> Self {
        Self { route, body }
    }

    /// The routing value.
    pub fn route(&self) -> u64 {
        self.route
    }

    /// The key body bytes.
    pub fn body(&self) -> &Bytes {
        &self.body
    }

    /// The part this key lands in for a table with `parts` parts.
    ///
    /// # Panics
    ///
    /// Panics if `parts` is zero; tables always have at least one part.
    pub fn part_for(&self, parts: u32) -> PartId {
        assert!(parts > 0, "a table must have at least one part");
        PartId((self.route % u64::from(parts)) as u32)
    }

    /// Total encoded size in bytes, used for marshalling accounting.
    pub fn wire_len(&self) -> usize {
        8 + self.body.len()
    }
}

impl Encode for RoutedKey {
    fn encode(&self, w: &mut ByteWriter) {
        self.route.encode(w);
        self.body.encode(w);
    }
    fn size_hint(&self) -> usize {
        10 + self.body.len()
    }
}

impl Decode for RoutedKey {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, WireError> {
        let route = u64::decode(r)?;
        let body = Bytes::decode(r)?;
        Ok(Self { route, body })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ripple_wire::{from_wire, to_wire};

    #[test]
    fn from_body_routes_by_hash() {
        let body = Bytes::from_static(b"component-1");
        let k = RoutedKey::from_body(body.clone());
        assert_eq!(k.route(), fnv64(&body));
    }

    #[test]
    fn with_route_targets_exact_part() {
        for parts in [1u32, 2, 6, 7, 64] {
            for target in 0..parts {
                let k = RoutedKey::with_route(u64::from(target), Bytes::from_static(b"x"));
                assert_eq!(k.part_for(parts), PartId(target));
            }
        }
    }

    #[test]
    fn equal_bodies_same_part() {
        let a = RoutedKey::from_body(Bytes::from_static(b"abc"));
        let b = RoutedKey::from_body(Bytes::from_static(b"abc"));
        assert_eq!(a, b);
        assert_eq!(a.part_for(6), b.part_for(6));
    }

    #[test]
    #[should_panic(expected = "at least one part")]
    fn zero_parts_panics() {
        RoutedKey::from_body(Bytes::new()).part_for(0);
    }

    #[test]
    fn wire_roundtrip() {
        let k = RoutedKey::with_route(42, Bytes::from_static(b"\x00body\xff"));
        let back: RoutedKey = from_wire(&to_wire(&k)).unwrap();
        assert_eq!(k, back);
    }

    #[test]
    fn fnv_spreads_sequential_keys() {
        // Not a statistical test, just a sanity check that sequential ids do
        // not collapse into one part.
        let parts = 6u32;
        let mut seen = std::collections::HashSet::new();
        for i in 0..100u32 {
            let k = RoutedKey::from_body(to_wire(&i).to_vec().into());
            seen.insert(k.part_for(parts));
        }
        assert_eq!(seen.len() as u32, parts);
    }
}
