//! Property test: `MemStore` behaves like a `HashMap` under arbitrary
//! sequences of get/put/delete, regardless of part count or key routing.

use std::collections::HashMap;

use bytes::Bytes;
use proptest::prelude::*;
use ripple_kv::{KvStore, RoutedKey, Table, TableSpec};
use ripple_store_mem::MemStore;

#[derive(Debug, Clone)]
enum Op {
    Put(u64, Vec<u8>, Vec<u8>),
    Get(u64, Vec<u8>),
    Delete(u64, Vec<u8>),
    Len,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    let key = prop::collection::vec(any::<u8>(), 0..8);
    let val = prop::collection::vec(any::<u8>(), 0..16);
    prop_oneof![
        (any::<u64>(), key.clone(), val).prop_map(|(r, k, v)| Op::Put(r % 8, k, v)),
        (any::<u64>(), key.clone()).prop_map(|(r, k)| Op::Get(r % 8, k)),
        (any::<u64>(), key).prop_map(|(r, k)| Op::Delete(r % 8, k)),
        Just(Op::Len),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn store_matches_hashmap_model(
        parts in 1u32..7,
        ops in prop::collection::vec(op_strategy(), 1..120),
    ) {
        let store = MemStore::builder().default_parts(parts).build();
        let table = store.create_table(&TableSpec::new("t")).unwrap();
        let mut model: HashMap<RoutedKey, Bytes> = HashMap::new();
        for op in ops {
            match op {
                Op::Put(route, k, v) => {
                    let key = RoutedKey::with_route(route, Bytes::from(k));
                    let value = Bytes::from(v);
                    let expect = model.insert(key.clone(), value.clone());
                    let got = table.put(key, value).unwrap();
                    prop_assert_eq!(got, expect);
                }
                Op::Get(route, k) => {
                    let key = RoutedKey::with_route(route, Bytes::from(k));
                    prop_assert_eq!(table.get(&key).unwrap(), model.get(&key).cloned());
                }
                Op::Delete(route, k) => {
                    let key = RoutedKey::with_route(route, Bytes::from(k));
                    prop_assert_eq!(table.delete(&key).unwrap(), model.remove(&key).is_some());
                }
                Op::Len => {
                    prop_assert_eq!(table.len().unwrap(), model.len());
                }
            }
        }
        // Final state matches exactly, via enumeration.
        let consumer = ripple_kv::FnPairConsumer::new(
            |k: &RoutedKey, v: &[u8]| (k.clone(), Bytes::copy_from_slice(v)),
        );
        let pairs = store.enumerate_pairs(&table, consumer).unwrap();
        let observed: HashMap<RoutedKey, Bytes> = pairs.into_iter().collect();
        prop_assert_eq!(observed, model);
    }
}
