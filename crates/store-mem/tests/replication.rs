//! Part replication (§III-A: "a given table's parts may be replicated"):
//! replicated tables keep a backup copy of each part that survives primary
//! shard loss and can be promoted — the WXS-style recovery the paper's
//! fault-tolerance sketch assumes.

use bytes::Bytes;
use ripple_kv::{KvStore, PartId, RoutedKey, ScanControl, Table, TableSpec};
use ripple_store_mem::MemStore;

fn k(route: u64, body: &str) -> RoutedKey {
    RoutedKey::with_route(route, Bytes::copy_from_slice(body.as_bytes()))
}

fn v(s: &str) -> Bytes {
    Bytes::copy_from_slice(s.as_bytes())
}

#[test]
fn replicated_part_survives_failure_via_promotion() {
    let store = MemStore::builder().default_parts(2).build();
    let t = store
        .create_table(TableSpec::new("r").parts(2).replicated())
        .unwrap();
    t.put(k(0, "a"), v("1")).unwrap();
    t.put(k(0, "b"), v("2")).unwrap();
    t.put(k(1, "c"), v("3")).unwrap();

    store.fail_part(&t, PartId(0)).unwrap();
    let promoted = store.promote_replicas(&t, PartId(0)).unwrap();
    assert_eq!(promoted, 1);
    assert_eq!(t.get(&k(0, "a")).unwrap(), Some(v("1")));
    assert_eq!(t.get(&k(0, "b")).unwrap(), Some(v("2")));
    assert_eq!(t.get(&k(1, "c")).unwrap(), Some(v("3")));
}

#[test]
fn unreplicated_part_comes_back_empty() {
    let store = MemStore::builder().default_parts(2).build();
    let t = store.create_table(TableSpec::new("u").parts(2)).unwrap();
    t.put(k(0, "a"), v("1")).unwrap();
    store.fail_part(&t, PartId(0)).unwrap();
    let promoted = store.promote_replicas(&t, PartId(0)).unwrap();
    assert_eq!(promoted, 0, "no replica to promote");
    assert_eq!(t.get(&k(0, "a")).unwrap(), None, "data is gone");
}

#[test]
fn replica_tracks_deletes_and_overwrites() {
    let store = MemStore::builder().default_parts(1).build();
    let t = store
        .create_table(TableSpec::new("r").parts(1).replicated())
        .unwrap();
    t.put(k(0, "a"), v("old")).unwrap();
    t.put(k(0, "a"), v("new")).unwrap();
    t.put(k(0, "gone"), v("x")).unwrap();
    t.delete(&k(0, "gone")).unwrap();

    store.fail_part(&t, PartId(0)).unwrap();
    store.promote_replicas(&t, PartId(0)).unwrap();
    assert_eq!(t.get(&k(0, "a")).unwrap(), Some(v("new")));
    assert_eq!(t.get(&k(0, "gone")).unwrap(), None);
    assert_eq!(t.len().unwrap(), 1);
}

#[test]
fn replica_tracks_collocated_writes_and_drains() {
    let store = MemStore::builder().default_parts(1).build();
    let t = store
        .create_table(TableSpec::new("r").parts(1).replicated())
        .unwrap();
    // Writes through the collocated PartView path.
    store
        .run_at(&t, PartId(0), |view| {
            view.put("r", k(0, "x"), v("1")).unwrap();
            view.put("r", k(0, "y"), v("2")).unwrap();
            // Drain consumes x and y...
            view.drain("r", &mut |_k, _v| ScanControl::Continue)
                .unwrap();
            // ...then one more write.
            view.put("r", k(0, "z"), v("3")).unwrap();
        })
        .join()
        .unwrap();
    store.fail_part(&t, PartId(0)).unwrap();
    store.promote_replicas(&t, PartId(0)).unwrap();
    assert_eq!(t.len().unwrap(), 1, "only z survives, in the replica too");
    assert_eq!(t.get(&k(0, "z")).unwrap(), Some(v("3")));
}

#[test]
fn create_table_like_inherits_replication() {
    let store = MemStore::builder().default_parts(2).build();
    let r = store
        .create_table(TableSpec::new("r").parts(2).replicated())
        .unwrap();
    let like = store.create_table_like("r2", &r).unwrap();
    like.put(k(1, "p"), v("q")).unwrap();
    store.fail_part(&r, PartId(1)).unwrap();
    let promoted = store.promote_replicas(&r, PartId(1)).unwrap();
    assert_eq!(promoted, 2, "both group tables have replicas");
    assert_eq!(like.get(&k(1, "p")).unwrap(), Some(v("q")));
}

#[test]
fn clear_resyncs_the_replica() {
    let store = MemStore::builder().default_parts(1).build();
    let t = store
        .create_table(TableSpec::new("r").parts(1).replicated())
        .unwrap();
    t.put(k(0, "a"), v("1")).unwrap();
    t.clear().unwrap();
    store.fail_part(&t, PartId(0)).unwrap();
    store.promote_replicas(&t, PartId(0)).unwrap();
    assert_eq!(t.len().unwrap(), 0, "cleared data must not resurrect");
}
