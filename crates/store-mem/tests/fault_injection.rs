//! End-to-end behavior of the seeded fault injector: faults surface on the
//! part-view operation path, crashes fail the whole co-partitioned group,
//! and the recorded trace is reproducible from the seed.

use std::time::Duration;

use ripple_kv::{KvError, KvStore, PartId, RoutedKey, Table, TableSpec};
use ripple_store_mem::{FaultKind, FaultPlan, MemStore};

fn key(n: u64) -> RoutedKey {
    RoutedKey::with_route(n, n.to_be_bytes().to_vec().into())
}

#[test]
fn certain_transient_faults_fail_view_ops_with_transient_error() {
    let store = MemStore::builder()
        .default_parts(2)
        .fault_plan(FaultPlan::seeded(1).transient_puts(1.0))
        .build();
    let t = store.create_table(TableSpec::new("t").parts(2)).unwrap();
    let err = store
        .run_at(&t, PartId(0), |view| {
            view.put("t", key(1), vec![1].into()).unwrap_err()
        })
        .join()
        .unwrap();
    assert!(err.is_transient(), "expected transient error, got {err:?}");
    assert!(matches!(
        err,
        KvError::Transient {
            op: "put",
            part: 0,
            ..
        }
    ));
    // Gets were not armed, so reads still work.
    store
        .run_at(&t, PartId(0), |view| view.get("t", &key(1)).map(|_| ()))
        .join()
        .unwrap()
        .unwrap();
    let trace = store.fault_trace();
    assert!(!trace.is_empty());
    assert!(trace.iter().all(|r| r.kind == FaultKind::Transient));
}

#[test]
fn scripted_crash_fails_the_part_and_replicas_recover_it() {
    let store = MemStore::builder()
        .default_parts(2)
        // Third part-view op issued by part 0 crashes it.
        .fault_plan(FaultPlan::seeded(2).crash_part(0, 3))
        .build();
    let t = store
        .create_table(TableSpec::new("t").parts(2).replicated())
        .unwrap();
    // Handle-level writes are not injected; seed both parts.
    for n in 0..8u64 {
        t.put(key(n), vec![n as u8].into()).unwrap();
    }
    let before = t.len().unwrap();

    let err = store
        .run_at(&t, PartId(0), |view| {
            for n in 100..110u64 {
                view.put("t", key(n), vec![0].into())?;
            }
            Ok::<(), KvError>(())
        })
        .join()
        .unwrap()
        .unwrap_err();
    assert_eq!(err, KvError::PartFailed { part: 0 });
    assert!(store.is_part_failed(&t, PartId(0)));

    // The backup replica survives the crash; promotion brings back both the
    // pre-crash contents and the writes that landed before the crash op.
    let promoted = store.promote_replicas(&t, PartId(0)).unwrap();
    assert_eq!(promoted, 1);
    assert!(!store.is_part_failed(&t, PartId(0)));
    assert_eq!(t.len().unwrap(), before + 2);

    let crashes: Vec<_> = store
        .fault_trace()
        .into_iter()
        .filter(|r| r.kind == FaultKind::Crash)
        .collect();
    assert_eq!(crashes.len(), 1);
    assert_eq!(crashes[0].part, 0);
    assert_eq!(crashes[0].op_index, 3);
}

#[test]
fn latency_injection_delays_but_does_not_fail() {
    let store = MemStore::builder()
        .default_parts(1)
        .fault_plan(FaultPlan::seeded(3).latency(1.0, Duration::from_micros(50)))
        .build();
    let t = store.create_table(&TableSpec::new("t")).unwrap();
    store
        .run_at(&t, PartId(0), |view| {
            view.put("t", key(1), vec![1].into()).map(|_| ())
        })
        .join()
        .unwrap()
        .unwrap();
    assert_eq!(t.len().unwrap(), 1);
    assert!(store
        .fault_trace()
        .iter()
        .all(|r| r.kind == FaultKind::Latency));
}

#[test]
fn same_plan_same_workload_same_trace() {
    let run = || {
        let store = MemStore::builder()
            .default_parts(3)
            .fault_plan(FaultPlan::seeded(77).transient_ops(0.15))
            .build();
        let t = store.create_table(TableSpec::new("t").parts(3)).unwrap();
        for part in 0..3 {
            store
                .run_at(&t, PartId(part), move |view| {
                    for n in 0..50u64 {
                        let _ = view.put("t", key(n * 3 + u64::from(part)), vec![1].into());
                        let _ = view.get("t", &key(n));
                        let _ = view.delete("t", &key(n + 1000));
                    }
                })
                .join()
                .unwrap();
        }
        store.fault_trace()
    };
    let a = run();
    let b = run();
    assert!(!a.is_empty());
    assert_eq!(a, b);
}
