//! Edge cases of the debugging store: ubiquitous-table lineages, failed
//! parts interacting with whole-table operations, metric counters, and
//! checkpoint scope.

use bytes::Bytes;
use ripple_kv::{KvError, KvStore, PartId, RoutedKey, Table, TableSpec};
use ripple_store_mem::MemStore;

fn bkey(s: &str) -> RoutedKey {
    RoutedKey::from_body(Bytes::copy_from_slice(s.as_bytes()))
}

#[test]
fn table_created_like_a_ubiquitous_table_is_ubiquitous() {
    let store = MemStore::builder().default_parts(4).build();
    let u = store
        .create_table(TableSpec::new("bcast").ubiquitous())
        .unwrap();
    let like = store.create_table_like("bcast2", &u).unwrap();
    assert!(like.is_ubiquitous());
    assert_eq!(like.part_count(), 1);
    assert_eq!(like.partitioning_id(), u.partitioning_id());
}

#[test]
fn whole_table_ops_fail_while_any_part_is_failed() {
    let store = MemStore::builder().default_parts(3).build();
    let t = store.create_table(&TableSpec::new("t")).unwrap();
    t.put(
        RoutedKey::with_route(2, Bytes::from_static(b"k")),
        Bytes::from_static(b"v"),
    )
    .unwrap();
    store.fail_part(&t, PartId(2)).unwrap();
    assert!(matches!(t.len(), Err(KvError::PartFailed { part: 2 })));
    assert!(matches!(t.clear(), Err(KvError::PartFailed { part: 2 })));
    // Healthy parts still serve point operations.
    let healthy = RoutedKey::with_route(0, Bytes::from_static(b"h"));
    t.put(healthy.clone(), Bytes::from_static(b"1")).unwrap();
    assert!(t.get(&healthy).unwrap().is_some());
    store.heal_part(&t, PartId(2)).unwrap();
    assert_eq!(t.len().unwrap(), 1);
}

#[test]
fn checkpoint_of_failed_part_is_refused() {
    let store = MemStore::builder().default_parts(2).build();
    let t = store.create_table(&TableSpec::new("t")).unwrap();
    store.fail_part(&t, PartId(1)).unwrap();
    assert!(matches!(
        store.checkpoint_part(&t, PartId(1)),
        Err(KvError::PartFailed { part: 1 })
    ));
}

#[test]
fn checkpoints_exclude_other_partitioning_groups() {
    let store = MemStore::builder().default_parts(2).build();
    let a = store.create_table(&TableSpec::new("a")).unwrap();
    let unrelated = store.create_table(&TableSpec::new("unrelated")).unwrap();
    a.put(
        RoutedKey::with_route(0, Bytes::from_static(b"x")),
        Bytes::from_static(b"1"),
    )
    .unwrap();
    unrelated
        .put(
            RoutedKey::with_route(0, Bytes::from_static(b"y")),
            Bytes::from_static(b"2"),
        )
        .unwrap();
    let cp = store.checkpoint_part(&a, PartId(0)).unwrap();
    let names: Vec<&str> = cp.table_names().collect();
    assert_eq!(names, vec!["a"], "unrelated groups are not captured");
}

#[test]
fn enumeration_counter_ticks() {
    let store = MemStore::builder().default_parts(2).build();
    let t = store.create_table(&TableSpec::new("t")).unwrap();
    t.put(bkey("a"), Bytes::from_static(b"1")).unwrap();
    let before = store.metrics().enumerations;
    store
        .run_at(&t, PartId(0), |view| {
            view.scan("t", &mut |_k, _v| ripple_kv::ScanControl::Continue)
                .unwrap();
        })
        .join()
        .unwrap();
    assert_eq!(store.metrics().enumerations, before + 1);
}

#[test]
fn tasks_dispatched_counter_ticks() {
    let store = MemStore::builder().default_parts(2).build();
    let t = store.create_table(&TableSpec::new("t")).unwrap();
    let before = store.metrics().tasks_dispatched;
    for p in 0..2 {
        store.run_at(&t, PartId(p), |_| ()).join().unwrap();
    }
    assert_eq!(store.metrics().tasks_dispatched, before + 2);
}

#[test]
fn default_parts_used_when_spec_leaves_one() {
    let store = MemStore::builder().default_parts(7).build();
    assert_eq!(store.default_parts(), 7);
    let t = store.create_table(&TableSpec::new("t")).unwrap();
    assert_eq!(t.part_count(), 7);
    let explicit = store.create_table(TableSpec::new("t2").parts(3)).unwrap();
    assert_eq!(explicit.part_count(), 3);
}

#[test]
#[should_panic(expected = "out of range")]
fn run_at_out_of_range_part_panics() {
    let store = MemStore::builder().default_parts(2).build();
    let t = store.create_table(&TableSpec::new("t")).unwrap();
    let _ = store.run_at(&t, PartId(9), |_| ());
}
