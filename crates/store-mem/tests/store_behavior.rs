//! Behavioural tests for the debugging store: SPI conformance, locality and
//! marshalling accounting, co-partitioning, ubiquitous tables, enumeration,
//! mobile code, and failure injection.

use bytes::Bytes;
use ripple_kv::{
    FnPairConsumer, KvError, KvStore, PairConsumer, PartId, RoutedKey, ScanControl, Table,
    TableSpec,
};
use ripple_store_mem::MemStore;

fn bkey(s: &str) -> RoutedKey {
    RoutedKey::from_body(Bytes::copy_from_slice(s.as_bytes()))
}

fn bval(s: &str) -> Bytes {
    Bytes::copy_from_slice(s.as_bytes())
}

#[test]
fn basic_get_put_delete() {
    let store = MemStore::builder().default_parts(6).build();
    let t = store.create_table(&TableSpec::new("t")).unwrap();
    assert_eq!(t.part_count(), 6);
    assert_eq!(t.get(&bkey("a")).unwrap(), None);
    assert_eq!(t.put(bkey("a"), bval("1")).unwrap(), None);
    assert_eq!(t.put(bkey("a"), bval("2")).unwrap(), Some(bval("1")));
    assert_eq!(t.get(&bkey("a")).unwrap(), Some(bval("2")));
    assert!(t.delete(&bkey("a")).unwrap());
    assert!(!t.delete(&bkey("a")).unwrap());
    assert_eq!(t.get(&bkey("a")).unwrap(), None);
}

#[test]
fn len_and_clear() {
    let store = MemStore::new();
    let t = store.create_table(&TableSpec::new("t")).unwrap();
    for i in 0..100u32 {
        t.put(bkey(&format!("k{i}")), bval("v")).unwrap();
    }
    assert_eq!(t.len().unwrap(), 100);
    assert!(!t.is_empty().unwrap());
    t.clear().unwrap();
    assert_eq!(t.len().unwrap(), 0);
    assert!(t.is_empty().unwrap());
}

#[test]
fn duplicate_table_name_rejected() {
    let store = MemStore::new();
    store.create_table(&TableSpec::new("t")).unwrap();
    assert!(matches!(
        store.create_table(&TableSpec::new("t")),
        Err(KvError::TableExists { name }) if name == "t"
    ));
}

#[test]
fn lookup_and_drop() {
    let store = MemStore::new();
    let t = store.create_table(&TableSpec::new("t")).unwrap();
    t.put(bkey("a"), bval("1")).unwrap();
    let t2 = store.lookup_table("t").unwrap();
    assert_eq!(t2.get(&bkey("a")).unwrap(), Some(bval("1")));
    store.drop_table("t").unwrap();
    assert!(matches!(
        store.lookup_table("t"),
        Err(KvError::NoSuchTable { .. })
    ));
    assert!(matches!(
        t.get(&bkey("a")),
        Err(KvError::TableDropped { .. })
    ));
    assert!(matches!(
        store.drop_table("t"),
        Err(KvError::NoSuchTable { .. })
    ));
    // The name is free again.
    store.create_table(&TableSpec::new("t")).unwrap();
}

#[test]
fn explicit_routes_control_placement() {
    let store = MemStore::new();
    let t = store.create_table(TableSpec::new("t").parts(4)).unwrap();
    // One key aimed at each part; every part then holds exactly one entry.
    for p in 0..4u64 {
        t.put(RoutedKey::with_route(p, bval(&format!("k{p}"))), bval("v"))
            .unwrap();
    }
    for p in 0..4u32 {
        let n = store
            .run_at(&t, PartId(p), |view| view.len("t").unwrap())
            .join()
            .unwrap();
        assert_eq!(n, 1, "part {p}");
    }
}

#[test]
fn remote_ops_are_marshalled_local_ops_are_not() {
    let store = MemStore::builder().default_parts(2).build();
    let t = store.create_table(&TableSpec::new("t")).unwrap();
    let before = store.metrics();
    // From the client (outside any part) everything is remote.
    t.put(RoutedKey::with_route(0, bval("k")), bval("value"))
        .unwrap();
    let mid = store.metrics() - before;
    assert_eq!(mid.remote_ops, 1);
    assert_eq!(mid.local_ops, 0);
    assert!(mid.bytes_marshalled > 0);

    // From mobile code running at the key's part, access is local.
    let before = store.metrics();
    let t2 = t.clone();
    store
        .run_at(&t, PartId(0), move |_view| {
            t2.get(&RoutedKey::with_route(0, bval("k"))).unwrap();
        })
        .join()
        .unwrap();
    let after = store.metrics() - before;
    assert_eq!(after.local_ops, 1);
    assert_eq!(after.remote_ops, 0);
    assert_eq!(after.bytes_marshalled, 0);

    // From mobile code at the *other* part, the same access is remote.
    let before = store.metrics();
    let t2 = t.clone();
    store
        .run_at(&t, PartId(1), move |_view| {
            t2.get(&RoutedKey::with_route(0, bval("k"))).unwrap();
        })
        .join()
        .unwrap();
    let after = store.metrics() - before;
    assert_eq!(after.remote_ops, 1);
    assert!(after.bytes_marshalled > 0);
}

#[test]
fn get_reply_bytes_counted() {
    let store = MemStore::builder().default_parts(2).build();
    let t = store.create_table(&TableSpec::new("t")).unwrap();
    let key = RoutedKey::with_route(1, bval("k"));
    t.put(key.clone(), Bytes::from(vec![0u8; 1000])).unwrap();
    let before = store.metrics();
    t.get(&key).unwrap();
    let delta = store.metrics() - before;
    assert!(
        delta.bytes_marshalled >= 1000,
        "reply value bytes must be accounted, got {}",
        delta.bytes_marshalled
    );
}

#[test]
fn copartitioned_tables_share_parts() {
    let store = MemStore::builder().default_parts(3).build();
    let a = store.create_table(&TableSpec::new("a")).unwrap();
    let b = store.create_table_like("b", &a).unwrap();
    assert_eq!(a.partitioning_id(), b.partitioning_id());
    // A fresh table gets its own partitioning.
    let c = store.create_table(&TableSpec::new("c")).unwrap();
    assert_ne!(a.partitioning_id(), c.partitioning_id());

    // Mobile code at part p of `a` can access `b` locally, but not `c`.
    let key = RoutedKey::with_route(2, bval("x"));
    b.put(key.clone(), bval("in-b")).unwrap();
    let out = store
        .run_at(&a, PartId(2), move |view| {
            let from_b = view.get("b", &key).unwrap();
            let from_c = view.get("c", &key);
            (from_b, from_c)
        })
        .join()
        .unwrap();
    assert_eq!(out.0, Some(bval("in-b")));
    assert!(matches!(out.1, Err(KvError::NotCopartitioned { .. })));
}

#[test]
fn ubiquitous_table_readable_from_any_part_not_writable_via_view() {
    let store = MemStore::builder().default_parts(4).build();
    let t = store.create_table(&TableSpec::new("t")).unwrap();
    let u = store
        .create_table(TableSpec::new("bcast").ubiquitous())
        .unwrap();
    assert!(u.is_ubiquitous());
    assert_eq!(u.part_count(), 1);
    u.put(bkey("pi"), bval("3.14")).unwrap();
    for p in 0..4u32 {
        let got = store
            .run_at(&t, PartId(p), |view| {
                let read = view.get("bcast", &bkey("pi")).unwrap();
                let write = view.put("bcast", bkey("e"), bval("2.71"));
                (read, write)
            })
            .join()
            .unwrap();
        assert_eq!(got.0, Some(bval("3.14")));
        assert!(matches!(got.1, Err(KvError::UbiquityMismatch { .. })));
    }
}

#[test]
fn enumerate_pairs_visits_everything_once() {
    let store = MemStore::builder().default_parts(5).build();
    let t = store.create_table(&TableSpec::new("t")).unwrap();
    for i in 0..250u32 {
        t.put(bkey(&format!("k{i}")), bval(&format!("{i}")))
            .unwrap();
    }
    let consumer = FnPairConsumer::new(|k: &RoutedKey, _v: &[u8]| k.body().clone());
    let mut seen = store.enumerate_pairs(&t, consumer).unwrap();
    seen.sort();
    assert_eq!(seen.len(), 250);
    seen.dedup();
    assert_eq!(seen.len(), 250);
}

#[derive(Clone)]
struct StopAfterOne;

impl PairConsumer for StopAfterOne {
    type Output = usize;
    fn pair(&mut self, _key: &RoutedKey, _value: &[u8]) -> ScanControl {
        ScanControl::Stop
    }
    fn finish(&mut self, _part: PartId) -> usize {
        1
    }
    fn combine(&self, a: usize, b: usize) -> usize {
        a + b
    }
}

#[test]
fn pair_consumer_stop_halts_per_part_scan() {
    let store = MemStore::builder().default_parts(3).build();
    let t = store.create_table(&TableSpec::new("t")).unwrap();
    for i in 0..90u32 {
        t.put(bkey(&format!("k{i}")), bval("v")).unwrap();
    }
    // Each part stops after its first pair, so output = number of parts.
    let out = store.enumerate_pairs(&t, StopAfterOne).unwrap();
    assert_eq!(out, 3);
}

#[test]
fn drain_consumes_entries_and_stop_preserves_rest() {
    let store = MemStore::builder().default_parts(1).build();
    let t = store.create_table(&TableSpec::new("t")).unwrap();
    for i in 0..10u32 {
        t.put(bkey(&format!("k{i}")), bval("v")).unwrap();
    }
    // Drain three entries then stop.
    let drained = store
        .run_at(&t, PartId(0), |view| {
            let mut n = 0;
            view.drain("t", &mut |_k, _v| {
                n += 1;
                if n == 3 {
                    ScanControl::Stop
                } else {
                    ScanControl::Continue
                }
            })
            .unwrap();
            n
        })
        .join()
        .unwrap();
    assert_eq!(drained, 3);
    assert_eq!(t.len().unwrap(), 7);
    // A full drain empties the table.
    store
        .run_at(&t, PartId(0), |view| {
            view.drain("t", &mut |_k, _v| ScanControl::Continue)
                .unwrap();
        })
        .join()
        .unwrap();
    assert_eq!(t.len().unwrap(), 0);
}

#[test]
fn run_at_panics_are_contained() {
    let store = MemStore::new();
    let t = store.create_table(&TableSpec::new("t")).unwrap();
    let h = store.run_at(&t, PartId(0), |_view| panic!("mobile code bug"));
    assert_eq!(
        h.join(),
        Err(KvError::TaskPanicked {
            part: 0,
            message: "mobile code bug".to_owned(),
        })
    );
    // The lane survives and keeps serving.
    let ok = store.run_at(&t, PartId(0), |_view| 7u32).join().unwrap();
    assert_eq!(ok, 7);
}

#[test]
fn run_at_all_returns_results_in_part_order() {
    let store = MemStore::builder().default_parts(4).build();
    let t = store.create_table(&TableSpec::new("t")).unwrap();
    let parts = store.run_at_all(&t, |view| view.part().0).unwrap();
    assert_eq!(parts, vec![0, 1, 2, 3]);
}

#[test]
fn failure_injection_loses_unsnapshotted_writes() {
    let store = MemStore::builder().default_parts(2).build();
    let t = store.create_table(&TableSpec::new("state")).unwrap();
    let t2 = store.create_table_like("aux", &t).unwrap();
    let k0 = RoutedKey::with_route(0, bval("a"));
    let k1 = RoutedKey::with_route(1, bval("b"));
    t.put(k0.clone(), bval("v0")).unwrap();
    t.put(k1.clone(), bval("v1")).unwrap();
    t2.put(k0.clone(), bval("aux0")).unwrap();

    let cp = store.checkpoint_part(&t, PartId(0)).unwrap();
    assert_eq!(cp.entry_count(), 2); // state + aux entries of part 0

    // Writes after the checkpoint are lost by the failure.
    t.put(RoutedKey::with_route(0, bval("late")), bval("lost"))
        .unwrap();
    store.fail_part(&t, PartId(0)).unwrap();
    assert!(store.is_part_failed(&t, PartId(0)));
    assert!(matches!(t.get(&k0), Err(KvError::PartFailed { part: 0 })));
    // The healthy part is unaffected.
    assert_eq!(t.get(&k1).unwrap(), Some(bval("v1")));

    store.restore_part(&cp).unwrap();
    assert!(!store.is_part_failed(&t, PartId(0)));
    assert_eq!(t.get(&k0).unwrap(), Some(bval("v0")));
    assert_eq!(t2.get(&k0).unwrap(), Some(bval("aux0")));
    assert_eq!(
        t.get(&RoutedKey::with_route(0, bval("late"))).unwrap(),
        None,
        "un-checkpointed write must be gone"
    );
}

#[test]
fn heal_without_restore_leaves_part_empty() {
    let store = MemStore::builder().default_parts(2).build();
    let t = store.create_table(&TableSpec::new("t")).unwrap();
    let k = RoutedKey::with_route(1, bval("x"));
    t.put(k.clone(), bval("v")).unwrap();
    store.fail_part(&t, PartId(1)).unwrap();
    store.heal_part(&t, PartId(1)).unwrap();
    assert_eq!(t.get(&k).unwrap(), None);
}

#[test]
fn concurrent_writers_from_many_threads() {
    let store = MemStore::builder().default_parts(4).build();
    let t = store.create_table(&TableSpec::new("t")).unwrap();
    std::thread::scope(|s| {
        for w in 0..8 {
            let t = t.clone();
            s.spawn(move || {
                for i in 0..200u32 {
                    t.put(bkey(&format!("w{w}-k{i}")), bval("v")).unwrap();
                }
            });
        }
    });
    assert_eq!(t.len().unwrap(), 8 * 200);
}

#[test]
fn table_names_lists_live_tables() {
    let store = MemStore::new();
    store.create_table(&TableSpec::new("a")).unwrap();
    store.create_table(&TableSpec::new("b")).unwrap();
    let mut names = store.table_names();
    names.sort();
    assert_eq!(names, vec!["a".to_owned(), "b".to_owned()]);
}
