//! Worker lanes and locality tracking for one partitioning group.

use std::cell::Cell;
use std::sync::atomic::{AtomicBool, Ordering};

use crossbeam::channel::{unbounded, Sender};
use ripple_kv::PartId;

/// A unit of work dispatched to a lane.
pub(crate) type Job = Box<dyn FnOnce() + Send>;

thread_local! {
    /// Which (partitioning id, part) the current thread is executing at,
    /// set while a lane runs a job.  `Table` operations consult this to
    /// decide local vs remote.
    static CURRENT: Cell<Option<(u64, u32)>> = const { Cell::new(None) };
}

/// The (partitioning id, part) the calling thread is collocated with, if it
/// is a store worker thread currently running a job.
pub(crate) fn current_locality() -> Option<(u64, u32)> {
    CURRENT.with(Cell::get)
}

/// The two service lanes of one part: short request/response operations on
/// one thread, long-running requests (enumerations, mobile code) on the
/// other — the structure the paper ascribes to its debugging store.
#[derive(Debug, Clone)]
pub(crate) struct Lanes {
    short: Sender<Job>,
    long: Sender<Job>,
}

impl Lanes {
    fn start(partitioning_id: u64, part: u32) -> Self {
        let short = spawn_lane("short", partitioning_id, part);
        let long = spawn_lane("long", partitioning_id, part);
        Self { short, long }
    }

    /// Enqueues a short request/response operation.
    pub(crate) fn submit_short(&self, job: Job) {
        // A send can only fail after shutdown, when results no longer matter.
        let _ = self.short.send(job);
    }

    /// Enqueues a long-running request.
    pub(crate) fn submit_long(&self, job: Job) {
        let _ = self.long.send(job);
    }
}

fn spawn_lane(kind: &str, partitioning_id: u64, part: u32) -> Sender<Job> {
    let (tx, rx) = unbounded::<Job>();
    std::thread::Builder::new()
        .name(format!("ripple-store-p{partitioning_id}.{part}-{kind}"))
        .spawn(move || {
            while let Ok(job) = rx.recv() {
                CURRENT.with(|c| c.set(Some((partitioning_id, part))));
                job();
                CURRENT.with(|c| c.set(None));
            }
        })
        .expect("spawn store lane thread");
    tx
}

/// One partitioning group: a part count, the per-part lanes, and per-part
/// failure flags.  Tables created `like` another share its `Partitioning`,
/// which is what makes them co-placed.
#[derive(Debug)]
pub(crate) struct Partitioning {
    pub(crate) id: u64,
    pub(crate) parts: u32,
    lanes: Vec<Lanes>,
    failed: Vec<AtomicBool>,
}

impl Partitioning {
    pub(crate) fn new(id: u64, parts: u32) -> Self {
        assert!(parts > 0);
        Self {
            id,
            parts,
            lanes: (0..parts).map(|p| Lanes::start(id, p)).collect(),
            failed: (0..parts).map(|_| AtomicBool::new(false)).collect(),
        }
    }

    pub(crate) fn lanes(&self, part: PartId) -> &Lanes {
        &self.lanes[part.index()]
    }

    pub(crate) fn is_failed(&self, part: PartId) -> bool {
        self.failed[part.index()].load(Ordering::Acquire)
    }

    pub(crate) fn set_failed(&self, part: PartId, failed: bool) {
        self.failed[part.index()].store(failed, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossbeam::channel::bounded;

    #[test]
    fn lanes_report_locality_to_jobs() {
        let p = Partitioning::new(7, 2);
        let (tx, rx) = bounded(1);
        p.lanes(PartId(1)).submit_short(Box::new(move || {
            tx.send(current_locality()).unwrap();
        }));
        assert_eq!(rx.recv().unwrap(), Some((7, 1)));
        assert_eq!(current_locality(), None);
    }

    #[test]
    fn short_and_long_lanes_are_distinct_threads() {
        let p = Partitioning::new(1, 1);
        let (tx, rx) = bounded(2);
        let tx2 = tx.clone();
        p.lanes(PartId(0)).submit_short(Box::new(move || {
            tx.send(std::thread::current().name().unwrap().to_owned())
                .unwrap();
        }));
        p.lanes(PartId(0)).submit_long(Box::new(move || {
            tx2.send(std::thread::current().name().unwrap().to_owned())
                .unwrap();
        }));
        let a = rx.recv().unwrap();
        let b = rx.recv().unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn failure_flags_toggle() {
        let p = Partitioning::new(1, 3);
        assert!(!p.is_failed(PartId(2)));
        p.set_failed(PartId(2), true);
        assert!(p.is_failed(PartId(2)));
        assert!(!p.is_failed(PartId(0)));
        p.set_failed(PartId(2), false);
        assert!(!p.is_failed(PartId(2)));
    }
}
