//! Shard checkpoints and failure injection.
//!
//! The paper sketches recovery for synchronized jobs: keep, per shard, the
//! completed step number; commit transactions in step order; on primary
//! shard failure, discard the failed shard's writes and retry from its last
//! completed step (§IV-A).  `MemStore` supplies the substrate: an atomic
//! per-part checkpoint of every table in a partitioning group, a fault
//! injector that loses the part's un-checkpointed writes, and a restore.

use std::collections::HashMap;

use bytes::Bytes;
use ripple_kv::{KvError, KvStore, PartId, RoutedKey};

use crate::{MemStore, MemTable};

/// A checkpoint of one part (shard) of a partitioning group: the part's
/// entries in every co-placed table at the moment of capture.
#[derive(Debug, Clone)]
pub struct PartCheckpoint {
    partitioning_id: u64,
    part: PartId,
    tables: Vec<(String, HashMap<RoutedKey, Bytes>)>,
}

impl PartCheckpoint {
    /// The part this checkpoint captures.
    pub fn part(&self) -> PartId {
        self.part
    }

    /// Names of the tables captured.
    pub fn table_names(&self) -> impl Iterator<Item = &str> {
        self.tables.iter().map(|(n, _)| n.as_str())
    }

    /// Total number of entries captured across tables.
    pub fn entry_count(&self) -> usize {
        self.tables.iter().map(|(_, m)| m.len()).sum()
    }
}

impl MemStore {
    /// Every live table co-partitioned with `reference` (including itself),
    /// skipping ubiquitous tables.
    fn group_tables(&self, reference: &MemTable) -> Vec<std::sync::Arc<crate::TableInner>> {
        let pid = reference.inner.partitioning.id;
        let tables = self.inner_tables();
        let mut group: Vec<_> = tables
            .into_iter()
            .filter(|t| !t.ubiquitous && t.partitioning.id == pid)
            .collect();
        group.sort_by(|a, b| a.name.cmp(&b.name));
        group
    }

    fn inner_tables(&self) -> Vec<std::sync::Arc<crate::TableInner>> {
        self.table_names()
            .iter()
            .filter_map(|n| self.inner.table(n).ok())
            .collect()
    }

    /// Captures the contents of `part` across every table co-partitioned
    /// with `reference` — the moral equivalent of committing a shard
    /// transaction at a step boundary.
    ///
    /// The caller is responsible for quiescence (no concurrent writers to
    /// the part), which the EBSP engine guarantees by checkpointing only at
    /// barriers.
    ///
    /// # Errors
    ///
    /// Fails with [`KvError::PartFailed`] if the part is currently failed
    /// and [`KvError::TableDropped`] if `reference` was dropped.
    pub fn checkpoint_part(
        &self,
        reference: &MemTable,
        part: PartId,
    ) -> Result<PartCheckpoint, KvError> {
        reference.inner.check_live()?;
        reference.inner.check_part_healthy(part)?;
        let tables = self
            .group_tables(reference)
            .iter()
            .map(|t| (t.name.clone(), t.parts[part.index()].lock().clone()))
            .collect();
        Ok(PartCheckpoint {
            partitioning_id: reference.inner.partitioning.id,
            part,
            tables,
        })
    }

    /// Simulates the loss of a shard: wipes `part`'s entries in every table
    /// co-partitioned with `reference` and marks the part failed.  Until
    /// [`MemStore::restore_part`] (or [`MemStore::heal_part`]) is called,
    /// operations addressing the part fail with [`KvError::PartFailed`].
    ///
    /// # Errors
    ///
    /// Fails with [`KvError::TableDropped`] if `reference` was dropped.
    pub fn fail_part(&self, reference: &MemTable, part: PartId) -> Result<(), KvError> {
        reference.inner.check_live()?;
        for t in self.group_tables(reference) {
            // The primary shard is lost; a backup replica (if the table
            // was created `replicated()`) survives on its own "container".
            t.parts[part.index()].lock().clear();
        }
        reference.inner.partitioning.set_failed(part, true);
        Ok(())
    }

    /// Recovers a failed part by promoting each replicated table's backup
    /// to primary — the WXS-style primary/replica shard recovery.  Tables
    /// in the group without a replica come back empty; returns how many
    /// tables were restored from replicas.
    ///
    /// # Errors
    ///
    /// Fails with [`KvError::TableDropped`] if `reference` was dropped.
    pub fn promote_replicas(&self, reference: &MemTable, part: PartId) -> Result<usize, KvError> {
        reference.inner.check_live()?;
        let mut promoted = 0;
        for t in self.group_tables(reference) {
            if let Some(backup) = &t.backup {
                let replica = backup[part.index()].lock().clone();
                *t.parts[part.index()].lock() = replica;
                promoted += 1;
            }
        }
        reference.inner.partitioning.set_failed(part, false);
        Ok(promoted)
    }

    /// Restores a checkpoint taken with [`MemStore::checkpoint_part`] and
    /// heals the part.  Tables dropped since the capture are skipped;
    /// tables created since keep their (empty) part.
    ///
    /// # Errors
    ///
    /// Fails with [`KvError::NotCopartitioned`] if the checkpoint belongs to
    /// a different partitioning group than it was taken from (inconsistent
    /// use).
    pub fn restore_part(&self, cp: &PartCheckpoint) -> Result<(), KvError> {
        for (name, data) in &cp.tables {
            if let Ok(t) = self.inner.table(name) {
                if t.partitioning.id != cp.partitioning_id {
                    return Err(KvError::NotCopartitioned {
                        left: name.clone(),
                        right: format!("checkpoint of partitioning {}", cp.partitioning_id),
                    });
                }
                *t.parts[cp.part.index()].lock() = data.clone();
                t.resync_backup(cp.part);
                t.partitioning.set_failed(cp.part, false);
            }
        }
        Ok(())
    }

    /// Restores only the named tables from a checkpoint and heals the part,
    /// leaving the part's other co-partitioned tables untouched — the
    /// substrate for the engine's fast single-part recovery, where state
    /// tables rewind to the last barrier while transport tables are
    /// recovered from replicas instead.
    ///
    /// # Errors
    ///
    /// Fails with [`KvError::NotCopartitioned`] on a partitioning mismatch
    /// and [`KvError::NoSuchTable`] if a requested table is not in the
    /// checkpoint.
    pub fn restore_part_tables(
        &self,
        cp: &PartCheckpoint,
        tables: &[String],
    ) -> Result<(), KvError> {
        for name in tables {
            let Some((_, data)) = cp.tables.iter().find(|(n, _)| n == name) else {
                return Err(KvError::NoSuchTable { name: name.clone() });
            };
            if let Ok(t) = self.inner.table(name) {
                if t.partitioning.id != cp.partitioning_id {
                    return Err(KvError::NotCopartitioned {
                        left: name.clone(),
                        right: format!("checkpoint of partitioning {}", cp.partitioning_id),
                    });
                }
                *t.parts[cp.part.index()].lock() = data.clone();
                t.resync_backup(cp.part);
                t.partitioning.set_failed(cp.part, false);
            }
        }
        Ok(())
    }

    /// Clears the failed flag of `part` without restoring any data — for
    /// recovery strategies that rebuild state some other way.
    ///
    /// # Errors
    ///
    /// Fails with [`KvError::TableDropped`] if `reference` was dropped.
    pub fn heal_part(&self, reference: &MemTable, part: PartId) -> Result<(), KvError> {
        reference.inner.check_live()?;
        reference.inner.partitioning.set_failed(part, false);
        Ok(())
    }

    /// Whether `part` of `reference`'s group is currently failed.
    pub fn is_part_failed(&self, reference: &MemTable, part: PartId) -> bool {
        reference.inner.partitioning.is_failed(part)
    }
}

impl ripple_kv::RecoverableStore for MemStore {
    type Checkpoint = PartCheckpoint;

    fn checkpoint_part(
        &self,
        reference: &MemTable,
        part: PartId,
    ) -> Result<PartCheckpoint, KvError> {
        MemStore::checkpoint_part(self, reference, part)
    }

    fn restore_part(&self, checkpoint: &PartCheckpoint) -> Result<(), KvError> {
        MemStore::restore_part(self, checkpoint)
    }

    fn restore_part_tables(
        &self,
        checkpoint: &PartCheckpoint,
        tables: &[String],
    ) -> Result<(), KvError> {
        MemStore::restore_part_tables(self, checkpoint, tables)
    }
}

impl ripple_kv::HealableStore for MemStore {
    fn recover_part(&self, reference: &MemTable, part: PartId) -> Result<usize, KvError> {
        self.promote_replicas(reference, part)
    }

    fn part_is_failed(&self, reference: &MemTable, part: PartId) -> Result<bool, KvError> {
        reference.inner.check_live()?;
        Ok(self.is_part_failed(reference, part))
    }
}

/// Memory-only durability: flushes are no-ops and nothing survives the
/// process, but the defaults let durable launches drive the same barrier
/// protocol it uses against a disk store (minus the resume).
impl ripple_kv::DurableStore for MemStore {}
