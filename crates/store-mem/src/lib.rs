//! In-process partitioned key/value store for Ripple — the "parallel
//! debugging store" of the paper's evaluation (§V-A).
//!
//! [`MemStore`] implements the [`ripple_kv`] SPI with:
//!
//! - N **parts** per table lineage, each served by **two worker threads**:
//!   a *short lane* for request/response operations (get, put, delete) and a
//!   *long lane* for long-running requests (enumerations and mobile code) —
//!   exactly the two-thread-per-partition structure the paper describes;
//! - **marshalling accounting**: "communication between emulated partitions
//!   involves marshalling, while local operations do not".  An operation
//!   issued from mobile code running at the addressed part touches the data
//!   directly; any other operation is counted as remote, its key/value bytes
//!   added to [`StoreMetrics::bytes_marshalled`](ripple_kv::StoreMetrics),
//!   and served through the short lane;
//! - **co-partitioning**: [`create_table_like`](ripple_kv::KvStore::create_table_like)
//!   shares the partitioning (and worker lanes) of an existing table so
//!   equal-routed keys are collocated;
//! - **ubiquitous tables**: single-part, readable locally from anywhere;
//! - **fault injection**: shard-granularity checkpoints
//!   ([`MemStore::checkpoint_part`]), failures ([`MemStore::fail_part`],
//!   which loses the part's un-checkpointed writes) and recovery
//!   ([`MemStore::restore_part`]) — the substrate for the EBSP engine's
//!   step-replay recovery.
//!
//! # Examples
//!
//! ```
//! use ripple_kv::{KvStore, RoutedKey, Table, TableSpec};
//! use ripple_store_mem::MemStore;
//!
//! # fn main() -> Result<(), ripple_kv::KvError> {
//! let store = MemStore::builder().default_parts(6).build();
//! let table = store.create_table(TableSpec::new("ranks").parts(6))?;
//! let key = RoutedKey::from_body(b"vertex-1".to_vec().into());
//! table.put(key.clone(), b"0.25".to_vec().into())?;
//! assert_eq!(table.get(&key)?.as_deref(), Some(&b"0.25"[..]));
//! # Ok(())
//! # }
//! ```

mod fault;
mod partitioning;
mod snapshot;
mod store;
mod table;
mod view;

pub use fault::{FaultKind, FaultOp, FaultPlan, FaultRecord};
pub use snapshot::PartCheckpoint;
pub use store::{MemStore, MemStoreBuilder};
pub use table::MemTable;

pub(crate) use partitioning::{current_locality, Partitioning};
pub(crate) use table::TableInner;
