use std::sync::Arc;

use bytes::Bytes;
use ripple_kv::{KvError, PartId, PartView, RoutedKey, ScanControl};

use crate::fault::FaultOp;
use crate::store::StoreInner;
use crate::TableInner;

/// The [`PartView`] handed to mobile code dispatched by
/// [`MemStore::run_at`](crate::MemStore).
///
/// All access is direct (marshalling-free); tables must be co-partitioned
/// with the dispatch's reference table, except ubiquitous tables, which are
/// readable from any part.
pub(crate) struct MemPartView {
    pub(crate) store: Arc<StoreInner>,
    pub(crate) partitioning_id: u64,
    pub(crate) part: PartId,
    pub(crate) reference_name: String,
}

impl MemPartView {
    /// Resolves a table for local access, enforcing co-partitioning.
    ///
    /// Returns the table and the part index to use (0 for ubiquitous).
    fn resolve(&self, table: &str, write: bool) -> Result<(Arc<TableInner>, PartId), KvError> {
        let t = self.store.table(table)?;
        t.check_live()?;
        if t.ubiquitous {
            if write {
                return Err(KvError::UbiquityMismatch {
                    name: table.to_owned(),
                });
            }
            return Ok((t, PartId(0)));
        }
        if t.partitioning.id != self.partitioning_id {
            return Err(KvError::NotCopartitioned {
                left: table.to_owned(),
                right: self.reference_name.clone(),
            });
        }
        t.check_part_healthy(self.part)?;
        Ok((t, self.part))
    }
}

impl PartView for MemPartView {
    fn part(&self) -> PartId {
        self.part
    }

    fn get(&self, table: &str, key: &RoutedKey) -> Result<Option<Bytes>, KvError> {
        self.store
            .fault_check(self.partitioning_id, self.part, FaultOp::Get)?;
        let (t, p) = self.resolve(table, false)?;
        self.store.counters.local_op(self.part);
        let out = t.parts[p.index()].lock().get(key).cloned();
        Ok(out)
    }

    fn put(&self, table: &str, key: RoutedKey, value: Bytes) -> Result<Option<Bytes>, KvError> {
        self.store
            .fault_check(self.partitioning_id, self.part, FaultOp::Put)?;
        let (t, p) = self.resolve(table, true)?;
        self.store.counters.local_op(self.part);
        t.mirror_insert(p, &key, &value);
        let out = t.parts[p.index()].lock().insert(key, value);
        Ok(out)
    }

    fn delete(&self, table: &str, key: &RoutedKey) -> Result<bool, KvError> {
        self.store
            .fault_check(self.partitioning_id, self.part, FaultOp::Delete)?;
        let (t, p) = self.resolve(table, true)?;
        self.store.counters.local_op(self.part);
        t.mirror_remove(p, key);
        let out = t.parts[p.index()].lock().remove(key).is_some();
        Ok(out)
    }

    fn scan(
        &self,
        table: &str,
        f: &mut dyn FnMut(&RoutedKey, &[u8]) -> ScanControl,
    ) -> Result<(), KvError> {
        let (t, p) = self.resolve(table, false)?;
        self.store.counters.enumeration(self.part);
        let map = t.parts[p.index()].lock();
        for (k, v) in map.iter() {
            if !f(k, v).should_continue() {
                break;
            }
        }
        Ok(())
    }

    fn drain(
        &self,
        table: &str,
        f: &mut dyn FnMut(RoutedKey, Bytes) -> ScanControl,
    ) -> Result<(), KvError> {
        let (t, p) = self.resolve(table, true)?;
        self.store.counters.enumeration(self.part);
        // Take the whole map; on early stop, unconsumed entries go back.
        let drained = std::mem::take(&mut *t.parts[p.index()].lock());
        let mut iter = drained.into_iter();
        for (k, v) in iter.by_ref() {
            if !f(k, v).should_continue() {
                break;
            }
        }
        let rest: std::collections::HashMap<_, _> = iter.collect();
        if !rest.is_empty() {
            t.parts[p.index()].lock().extend(rest);
        }
        t.resync_backup(p);
        Ok(())
    }

    fn len(&self, table: &str) -> Result<usize, KvError> {
        let (t, p) = self.resolve(table, false)?;
        let out = t.parts[p.index()].lock().len();
        Ok(out)
    }
}
