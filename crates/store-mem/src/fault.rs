//! Seeded, scriptable fault injection for [`MemStore`](crate::MemStore).
//!
//! A [`FaultPlan`] describes *what* can go wrong — probabilistic transient
//! get/put/delete failures, a scripted part crash at the Nth operation,
//! artificial latency — and a seed that makes every decision reproducible.
//! The store consults the plan on each part-view operation (the path mobile
//! code and the EBSP engines use) and records every injected fault in a
//! trace, so a chaos test can assert that the same seed produces the same
//! faults run after run.
//!
//! Decisions are a pure function of `(seed, part, per-part op index, op)`:
//! each part keeps its own operation counter, so a plan replays identically
//! regardless of how the scheduler interleaves parts.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

use parking_lot::Mutex;

/// The operation kinds faults can be injected into.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum FaultOp {
    /// A part-view read.
    Get,
    /// A part-view write.
    Put,
    /// A part-view delete.
    Delete,
}

impl FaultOp {
    /// Stable lowercase name, used in [`KvError::Transient`]'s `op` field.
    ///
    /// [`KvError::Transient`]: ripple_kv::KvError::Transient
    pub fn name(self) -> &'static str {
        match self {
            FaultOp::Get => "get",
            FaultOp::Put => "put",
            FaultOp::Delete => "delete",
        }
    }

    fn salt(self) -> u64 {
        match self {
            FaultOp::Get => 0x67,
            FaultOp::Put => 0x70,
            FaultOp::Delete => 0x64,
        }
    }
}

/// What the injector did to one operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum FaultKind {
    /// The operation failed with [`KvError::Transient`](ripple_kv::KvError).
    Transient,
    /// The whole part was crashed (primaries cleared, part marked failed).
    Crash,
    /// The operation was delayed but succeeded.
    Latency,
}

/// One injected fault, as recorded in the trace.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct FaultRecord {
    /// The part issuing the faulted operation.
    pub part: u32,
    /// The part's operation index (1-based) at the fault.
    pub op_index: u64,
    /// The operation kind.
    pub op: FaultOp,
    /// What was injected.
    pub kind: FaultKind,
}

/// A reproducible fault script for a [`MemStore`](crate::MemStore).
///
/// # Examples
///
/// ```
/// use std::time::Duration;
/// use ripple_store_mem::{FaultPlan, MemStore};
///
/// let plan = FaultPlan::seeded(42)
///     .transient_ops(0.02)
///     .latency(0.01, Duration::from_micros(100))
///     .crash_part(1, 500);
/// let store = MemStore::builder().default_parts(4).fault_plan(plan).build();
/// # let _ = store;
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    get_fail: f64,
    put_fail: f64,
    delete_fail: f64,
    crash: Option<(u32, u64)>,
    latency_prob: f64,
    latency: Duration,
}

impl FaultPlan {
    /// Starts an empty plan (no faults) reproducible from `seed`.
    pub fn seeded(seed: u64) -> Self {
        Self {
            seed,
            get_fail: 0.0,
            put_fail: 0.0,
            delete_fail: 0.0,
            crash: None,
            latency_prob: 0.0,
            latency: Duration::ZERO,
        }
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Probability in `[0, 1]` that any one part-view get fails
    /// transiently.
    pub fn transient_gets(mut self, probability: f64) -> Self {
        self.get_fail = probability.clamp(0.0, 1.0);
        self
    }

    /// Probability in `[0, 1]` that any one part-view put fails
    /// transiently.
    pub fn transient_puts(mut self, probability: f64) -> Self {
        self.put_fail = probability.clamp(0.0, 1.0);
        self
    }

    /// Probability in `[0, 1]` that any one part-view delete fails
    /// transiently.
    pub fn transient_deletes(mut self, probability: f64) -> Self {
        self.delete_fail = probability.clamp(0.0, 1.0);
        self
    }

    /// Sets the same transient-failure probability for gets, puts and
    /// deletes.
    pub fn transient_ops(self, probability: f64) -> Self {
        self.transient_gets(probability)
            .transient_puts(probability)
            .transient_deletes(probability)
    }

    /// Crashes `part` (clears its primaries across the co-partitioned
    /// group and marks it failed) when the part issues its `at_op`-th
    /// operation.  At most one crash fires per store; recovery APIs bring
    /// the part back.
    pub fn crash_part(mut self, part: u32, at_op: u64) -> Self {
        self.crash = Some((part, at_op.max(1)));
        self
    }

    /// With `probability`, delays an operation by `delay` before it
    /// executes normally.
    pub fn latency(mut self, probability: f64, delay: Duration) -> Self {
        self.latency_prob = probability.clamp(0.0, 1.0);
        self.latency = delay;
        self
    }
}

/// What the store should do to the current operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum FaultAction {
    /// Fail with [`KvError::Transient`](ripple_kv::KvError).
    Fail,
    /// Crash the issuing part, then fail with `PartFailed`.
    Crash,
    /// Sleep, then proceed.
    Delay(Duration),
}

/// SplitMix64 finalizer over a composed decision key; uniform in `[0, 1)`.
fn roll(seed: u64, part: u32, op_index: u64, salt: u64) -> f64 {
    let mut z = seed
        .wrapping_add(u64::from(part).wrapping_mul(0x9e37_79b9_7f4a_7c15))
        .wrapping_add(op_index.wrapping_mul(0xbf58_476d_1ce4_e5b9))
        .wrapping_add(salt.wrapping_mul(0x94d0_49bb_1331_11eb));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^= z >> 31;
    (z >> 11) as f64 / (1u64 << 53) as f64
}

/// Shared fault-decision engine, one per store.
#[derive(Debug)]
pub(crate) struct FaultInjector {
    plan: FaultPlan,
    /// Per-part operation counters; decisions key off these, not off any
    /// global order, so traces are schedule-independent.
    ops: Mutex<HashMap<u32, u64>>,
    crash_fired: AtomicBool,
    trace: Mutex<Vec<FaultRecord>>,
}

impl FaultInjector {
    pub(crate) fn new(plan: FaultPlan) -> Self {
        Self {
            plan,
            ops: Mutex::new(HashMap::new()),
            crash_fired: AtomicBool::new(false),
            trace: Mutex::new(Vec::new()),
        }
    }

    /// Decides the fate of one part-view operation.
    pub(crate) fn decide(&self, part: u32, op: FaultOp) -> Option<FaultAction> {
        let op_index = {
            let mut ops = self.ops.lock();
            let counter = ops.entry(part).or_insert(0);
            *counter += 1;
            *counter
        };
        if let Some((crash_part, at_op)) = self.plan.crash {
            if crash_part == part
                && op_index >= at_op
                && !self.crash_fired.swap(true, Ordering::AcqRel)
            {
                self.record(part, op_index, op, FaultKind::Crash);
                return Some(FaultAction::Crash);
            }
        }
        let fail_prob = match op {
            FaultOp::Get => self.plan.get_fail,
            FaultOp::Put => self.plan.put_fail,
            FaultOp::Delete => self.plan.delete_fail,
        };
        if fail_prob > 0.0 && roll(self.plan.seed, part, op_index, op.salt()) < fail_prob {
            self.record(part, op_index, op, FaultKind::Transient);
            return Some(FaultAction::Fail);
        }
        if self.plan.latency_prob > 0.0
            && roll(
                self.plan.seed ^ 0x6c61_7465_6e63_7921,
                part,
                op_index,
                op.salt(),
            ) < self.plan.latency_prob
        {
            self.record(part, op_index, op, FaultKind::Latency);
            return Some(FaultAction::Delay(self.plan.latency));
        }
        None
    }

    fn record(&self, part: u32, op_index: u64, op: FaultOp, kind: FaultKind) {
        self.trace.lock().push(FaultRecord {
            part,
            op_index,
            op,
            kind,
        });
    }

    /// The injected faults so far, sorted by `(part, op_index)` so two runs
    /// compare equal regardless of cross-part interleaving.
    pub(crate) fn trace(&self) -> Vec<FaultRecord> {
        let mut out = self.trace.lock().clone();
        out.sort();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drive(injector: &FaultInjector, parts: u32, ops_per_part: u64) {
        for part in 0..parts {
            for _ in 0..ops_per_part {
                let _ = injector.decide(part, FaultOp::Get);
                let _ = injector.decide(part, FaultOp::Put);
            }
        }
    }

    #[test]
    fn same_seed_same_trace() {
        let plan = FaultPlan::seeded(7).transient_ops(0.1);
        let a = FaultInjector::new(plan.clone());
        let b = FaultInjector::new(plan);
        drive(&a, 4, 200);
        drive(&b, 4, 200);
        let trace = a.trace();
        assert!(!trace.is_empty(), "0.1 over 1600 ops should fault");
        assert_eq!(trace, b.trace());
    }

    #[test]
    fn different_seeds_diverge() {
        let a = FaultInjector::new(FaultPlan::seeded(1).transient_ops(0.1));
        let b = FaultInjector::new(FaultPlan::seeded(2).transient_ops(0.1));
        drive(&a, 4, 200);
        drive(&b, 4, 200);
        assert_ne!(a.trace(), b.trace());
    }

    #[test]
    fn trace_is_schedule_independent() {
        // Same ops per part, issued in opposite part orders.
        let plan = FaultPlan::seeded(99).transient_ops(0.2);
        let a = FaultInjector::new(plan.clone());
        let b = FaultInjector::new(plan);
        for part in 0..3u32 {
            for _ in 0..50 {
                let _ = a.decide(part, FaultOp::Delete);
            }
        }
        for part in (0..3u32).rev() {
            for _ in 0..50 {
                let _ = b.decide(part, FaultOp::Delete);
            }
        }
        assert_eq!(a.trace(), b.trace());
    }

    #[test]
    fn crash_fires_exactly_once_at_threshold() {
        let injector = FaultInjector::new(FaultPlan::seeded(0).crash_part(2, 5));
        for i in 1..=10u64 {
            let action = injector.decide(2, FaultOp::Put);
            if i < 5 {
                assert_eq!(action, None, "op {i} should pass");
            } else if i == 5 {
                assert_eq!(action, Some(FaultAction::Crash));
            } else {
                assert_eq!(action, None, "crash must fire once, op {i}");
            }
        }
        // Other parts never crash.
        for _ in 0..10 {
            assert_eq!(injector.decide(0, FaultOp::Put), None);
        }
        let trace = injector.trace();
        assert_eq!(trace.len(), 1);
        assert_eq!(trace[0].kind, FaultKind::Crash);
        assert_eq!(trace[0].part, 2);
        assert_eq!(trace[0].op_index, 5);
    }

    #[test]
    fn zero_probabilities_inject_nothing() {
        let injector = FaultInjector::new(FaultPlan::seeded(3));
        drive(&injector, 4, 100);
        assert!(injector.trace().is_empty());
    }

    #[test]
    fn latency_decisions_are_recorded() {
        let injector =
            FaultInjector::new(FaultPlan::seeded(11).latency(1.0, Duration::from_micros(1)));
        assert_eq!(
            injector.decide(0, FaultOp::Get),
            Some(FaultAction::Delay(Duration::from_micros(1)))
        );
        assert_eq!(injector.trace()[0].kind, FaultKind::Latency);
    }
}
