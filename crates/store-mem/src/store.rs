use std::collections::HashMap;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crossbeam::channel::bounded;
use parking_lot::RwLock;
use ripple_kv::{KvError, KvStore, PartId, PartView, StoreMetrics, Table, TableSpec, TaskHandle};

use crate::fault::{FaultAction, FaultInjector, FaultOp, FaultPlan, FaultRecord};
use crate::table::{MemTable, TableInner};
use crate::view::MemPartView;
use crate::Partitioning;

/// One part's slice of the operation counters.
#[derive(Debug, Default)]
struct PartCells {
    local_ops: AtomicU64,
    remote_ops: AtomicU64,
    bytes_marshalled: AtomicU64,
    tasks: AtomicU64,
    enumerations: AtomicU64,
}

impl PartCells {
    fn snapshot(&self) -> StoreMetrics {
        StoreMetrics {
            local_ops: self.local_ops.load(Ordering::Relaxed),
            remote_ops: self.remote_ops.load(Ordering::Relaxed),
            bytes_marshalled: self.bytes_marshalled.load(Ordering::Relaxed),
            tasks_dispatched: self.tasks.load(Ordering::Relaxed),
            enumerations: self.enumerations.load(Ordering::Relaxed),
            // Memory-only: no log, no fsync, no replay.
            ..StoreMetrics::default()
        }
    }
}

/// Operation counters, updated lock-free, both store-wide and attributed
/// to the part that served the operation (the per-part vector grows on
/// first touch; whole-table operations such as `len`/`clear` count
/// store-wide only).
#[derive(Debug, Default)]
pub(crate) struct Counters {
    local_ops: AtomicU64,
    remote_ops: AtomicU64,
    bytes_marshalled: AtomicU64,
    tasks: AtomicU64,
    enumerations: AtomicU64,
    per_part: RwLock<Vec<PartCells>>,
}

impl Counters {
    /// Bumps one part cell, growing the vector on first touch of a part.
    fn at_part(&self, part: PartId, bump: impl Fn(&PartCells)) {
        {
            let cells = self.per_part.read();
            if let Some(cell) = cells.get(part.index()) {
                bump(cell);
                return;
            }
        }
        let mut cells = self.per_part.write();
        while cells.len() <= part.index() {
            cells.push(PartCells::default());
        }
        bump(&cells[part.index()]);
    }

    pub(crate) fn local_op(&self, part: PartId) {
        self.local_ops.fetch_add(1, Ordering::Relaxed);
        self.at_part(part, |c| {
            c.local_ops.fetch_add(1, Ordering::Relaxed);
        });
    }
    /// A local operation with no single serving part (whole-table scans).
    pub(crate) fn local_op_unattributed(&self) {
        self.local_ops.fetch_add(1, Ordering::Relaxed);
    }
    pub(crate) fn remote_op(&self, part: PartId, bytes: u64) {
        self.remote_ops.fetch_add(1, Ordering::Relaxed);
        self.bytes_marshalled.fetch_add(bytes, Ordering::Relaxed);
        self.at_part(part, |c| {
            c.remote_ops.fetch_add(1, Ordering::Relaxed);
            c.bytes_marshalled.fetch_add(bytes, Ordering::Relaxed);
        });
    }
    pub(crate) fn reply_bytes(&self, part: PartId, bytes: u64) {
        self.bytes_marshalled.fetch_add(bytes, Ordering::Relaxed);
        self.at_part(part, |c| {
            c.bytes_marshalled.fetch_add(bytes, Ordering::Relaxed);
        });
    }
    pub(crate) fn task(&self, part: PartId) {
        self.tasks.fetch_add(1, Ordering::Relaxed);
        self.at_part(part, |c| {
            c.tasks.fetch_add(1, Ordering::Relaxed);
        });
    }
    pub(crate) fn enumeration(&self, part: PartId) {
        self.enumerations.fetch_add(1, Ordering::Relaxed);
        self.at_part(part, |c| {
            c.enumerations.fetch_add(1, Ordering::Relaxed);
        });
    }
    fn snapshot(&self) -> StoreMetrics {
        StoreMetrics {
            local_ops: self.local_ops.load(Ordering::Relaxed),
            remote_ops: self.remote_ops.load(Ordering::Relaxed),
            bytes_marshalled: self.bytes_marshalled.load(Ordering::Relaxed),
            tasks_dispatched: self.tasks.load(Ordering::Relaxed),
            enumerations: self.enumerations.load(Ordering::Relaxed),
            // Memory-only: no log, no fsync, no replay.
            ..StoreMetrics::default()
        }
    }
    fn part_snapshots(&self) -> Vec<StoreMetrics> {
        self.per_part
            .read()
            .iter()
            .map(PartCells::snapshot)
            .collect()
    }
}

/// Store-wide shared state.
#[derive(Debug)]
pub(crate) struct StoreInner {
    tables: RwLock<HashMap<String, Arc<TableInner>>>,
    pub(crate) counters: Counters,
    default_parts: u32,
    next_partitioning: AtomicU64,
    /// Fault-decision engine, present when the store was built with a
    /// [`FaultPlan`].
    injector: Option<Arc<FaultInjector>>,
}

impl StoreInner {
    pub(crate) fn table(&self, name: &str) -> Result<Arc<TableInner>, KvError> {
        self.tables
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| KvError::NoSuchTable {
                name: name.to_owned(),
            })
    }

    /// Crashes `part` of a partitioning group: clears every co-partitioned
    /// primary (backups survive) and marks the part failed — the same
    /// semantics as [`MemStore::fail_part`], but reachable from a part view.
    fn crash_part(&self, partitioning_id: u64, part: PartId) {
        let tables = self.tables.read();
        let mut partitioning = None;
        for t in tables.values() {
            if !t.ubiquitous && t.partitioning.id == partitioning_id {
                t.parts[part.index()].lock().clear();
                partitioning.get_or_insert_with(|| Arc::clone(&t.partitioning));
            }
        }
        if let Some(p) = partitioning {
            p.set_failed(part, true);
        }
    }

    /// Consults the fault plan (if any) about one part-view operation.
    /// Returns the error to surface, or `Ok(())` to let the operation
    /// proceed (possibly after an injected delay).
    pub(crate) fn fault_check(
        &self,
        partitioning_id: u64,
        part: PartId,
        op: FaultOp,
    ) -> Result<(), KvError> {
        let Some(injector) = &self.injector else {
            return Ok(());
        };
        match injector.decide(part.0, op) {
            None => Ok(()),
            Some(FaultAction::Delay(d)) => {
                std::thread::sleep(d);
                Ok(())
            }
            Some(FaultAction::Fail) => Err(KvError::Transient {
                op: op.name(),
                part: part.0,
                detail: "injected transient fault".to_owned(),
            }),
            Some(FaultAction::Crash) => {
                self.crash_part(partitioning_id, part);
                Err(KvError::PartFailed { part: part.0 })
            }
        }
    }
}

/// Builder for [`MemStore`].
///
/// # Examples
///
/// ```
/// let store = ripple_store_mem::MemStore::builder().default_parts(6).build();
/// # let _ = store;
/// ```
#[derive(Debug, Clone)]
pub struct MemStoreBuilder {
    default_parts: u32,
    fault_plan: Option<FaultPlan>,
}

impl MemStoreBuilder {
    /// Number of parts for tables whose spec does not override it; the
    /// paper's PageRank runs used 6.
    pub fn default_parts(&mut self, parts: u32) -> &mut Self {
        assert!(parts > 0, "a store needs at least one part");
        self.default_parts = parts;
        self
    }

    /// Arms the store with a seeded fault script; see [`FaultPlan`].
    pub fn fault_plan(&mut self, plan: FaultPlan) -> &mut Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Builds the store.
    pub fn build(&self) -> MemStore {
        MemStore {
            inner: Arc::new(StoreInner {
                tables: RwLock::new(HashMap::new()),
                counters: Counters::default(),
                default_parts: self.default_parts,
                next_partitioning: AtomicU64::new(1),
                injector: self
                    .fault_plan
                    .clone()
                    .map(|plan| Arc::new(FaultInjector::new(plan))),
            }),
        }
    }
}

impl Default for MemStoreBuilder {
    fn default() -> Self {
        Self {
            default_parts: 4,
            fault_plan: None,
        }
    }
}

/// The in-process partitioned key/value store (see the crate docs).
#[derive(Debug, Clone)]
pub struct MemStore {
    pub(crate) inner: Arc<StoreInner>,
}

impl MemStore {
    /// Creates a store with the default part count (4).
    pub fn new() -> Self {
        Self::builder().build()
    }

    /// Starts configuring a store.
    pub fn builder() -> MemStoreBuilder {
        MemStoreBuilder::default()
    }

    /// The part count used when a [`TableSpec`] leaves it at 1 and the table
    /// is not ubiquitous.
    pub fn default_parts(&self) -> u32 {
        self.inner.default_parts
    }

    /// The faults injected so far under the store's [`FaultPlan`], sorted
    /// by `(part, op_index)`; empty when the store has no plan.  Two
    /// stores built from the same plan and driven by the same per-part
    /// operation sequences report identical traces.
    pub fn fault_trace(&self) -> Vec<FaultRecord> {
        self.inner
            .injector
            .as_ref()
            .map(|i| i.trace())
            .unwrap_or_default()
    }

    fn fresh_partitioning(&self, parts: u32) -> Arc<Partitioning> {
        let id = self.inner.next_partitioning.fetch_add(1, Ordering::Relaxed);
        Arc::new(Partitioning::new(id, parts))
    }

    fn insert_table(&self, inner: TableInner) -> Result<MemTable, KvError> {
        let name = inner.name.clone();
        let mut tables = self.inner.tables.write();
        if tables.contains_key(&name) {
            return Err(KvError::TableExists { name });
        }
        let arc = Arc::new(inner);
        tables.insert(name, Arc::clone(&arc));
        Ok(MemTable {
            store: Arc::clone(&self.inner),
            inner: arc,
        })
    }
}

impl Default for MemStore {
    fn default() -> Self {
        Self::new()
    }
}

impl KvStore for MemStore {
    type Table = MemTable;

    fn create_table(&self, spec: &TableSpec) -> Result<MemTable, KvError> {
        let parts = if spec.is_ubiquitous() {
            1
        } else if spec.part_count() == 1 {
            self.inner.default_parts
        } else {
            spec.part_count()
        };
        let partitioning = self.fresh_partitioning(parts);
        self.insert_table(TableInner::new(
            spec.name().to_owned(),
            spec.is_ubiquitous(),
            spec.is_replicated(),
            partitioning,
        ))
    }

    fn create_table_like(&self, name: &str, like: &MemTable) -> Result<MemTable, KvError> {
        like.inner.check_live()?;
        self.insert_table(TableInner::new(
            name.to_owned(),
            like.inner.ubiquitous,
            like.inner.backup.is_some(),
            Arc::clone(&like.inner.partitioning),
        ))
    }

    fn create_table_like_replicated(
        &self,
        name: &str,
        like: &MemTable,
    ) -> Result<MemTable, KvError> {
        like.inner.check_live()?;
        self.insert_table(TableInner::new(
            name.to_owned(),
            like.inner.ubiquitous,
            true,
            Arc::clone(&like.inner.partitioning),
        ))
    }

    fn lookup_table(&self, name: &str) -> Result<MemTable, KvError> {
        Ok(MemTable {
            store: Arc::clone(&self.inner),
            inner: self.inner.table(name)?,
        })
    }

    fn drop_table(&self, name: &str) -> Result<(), KvError> {
        match self.inner.tables.write().remove(name) {
            Some(t) => {
                t.dropped.store(true, Ordering::Release);
                Ok(())
            }
            None => Err(KvError::NoSuchTable {
                name: name.to_owned(),
            }),
        }
    }

    fn table_names(&self) -> Vec<String> {
        self.inner.tables.read().keys().cloned().collect()
    }

    /// Dispatches `task` onto the long-operation lane of `part` of
    /// `reference`'s partitioning group.
    ///
    /// # Panics
    ///
    /// Panics if `part` is out of range for `reference`.
    fn run_at<R, F>(&self, reference: &MemTable, part: PartId, task: F) -> TaskHandle<R>
    where
        R: Send + 'static,
        F: FnOnce(&dyn PartView) -> R + Send + 'static,
    {
        assert!(
            part.0 < reference.part_count(),
            "part {part} out of range for table {:?} with {} parts",
            reference.name(),
            reference.part_count()
        );
        self.inner.counters.task(part);
        let (tx, rx) = bounded(1);
        let view = MemPartView {
            store: Arc::clone(&self.inner),
            partitioning_id: reference.inner.partitioning.id,
            part,
            reference_name: reference.inner.name.clone(),
        };
        reference
            .inner
            .partitioning
            .lanes(part)
            .submit_long(Box::new(move || {
                let result = std::panic::catch_unwind(AssertUnwindSafe(|| task(&view)));
                let _ = tx.send(result);
            }));
        TaskHandle::from_channel(part, rx)
    }

    fn metrics(&self) -> StoreMetrics {
        self.inner.counters.snapshot()
    }

    fn part_metrics(&self) -> Vec<StoreMetrics> {
        self.inner.counters.part_snapshots()
    }

    /// Unlike the default scan-based implementation, this holds every part
    /// lock at once, so the cut is consistent even against concurrent
    /// writers — not just at a barrier.
    fn snapshot_table(&self, table: &MemTable) -> Result<ripple_kv::TableSnapshot, KvError> {
        table.inner.check_live()?;
        let guards: Vec<_> = table.inner.parts.iter().map(|m| m.lock()).collect();
        let mut entries = Vec::new();
        for (p, guard) in guards.iter().enumerate() {
            self.inner.counters.enumeration(PartId(p as u32));
            entries.extend(guard.iter().map(|(k, v)| (k.clone(), v.clone())));
        }
        drop(guards);
        Ok(ripple_kv::TableSnapshot::from_entries(entries))
    }
}
