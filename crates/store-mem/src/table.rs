use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use bytes::Bytes;
use crossbeam::channel::bounded;
use parking_lot::Mutex;
use ripple_kv::{KvError, PartId, RoutedKey, Table};

use crate::store::StoreInner;
use crate::{current_locality, Partitioning};

/// The shared state of one table.
#[derive(Debug)]
pub(crate) struct TableInner {
    pub(crate) name: String,
    pub(crate) ubiquitous: bool,
    pub(crate) partitioning: Arc<Partitioning>,
    pub(crate) parts: Vec<Mutex<HashMap<RoutedKey, Bytes>>>,
    /// Backup replica of each part, when the table was created
    /// `replicated()` — survives `fail_part` and feeds replica promotion.
    pub(crate) backup: Option<Vec<Mutex<HashMap<RoutedKey, Bytes>>>>,
    pub(crate) dropped: AtomicBool,
}

impl TableInner {
    pub(crate) fn new(
        name: String,
        ubiquitous: bool,
        replicated: bool,
        partitioning: Arc<Partitioning>,
    ) -> Self {
        let n = if ubiquitous { 1 } else { partitioning.parts };
        Self {
            name,
            ubiquitous,
            partitioning,
            parts: (0..n).map(|_| Mutex::new(HashMap::new())).collect(),
            backup: replicated.then(|| (0..n).map(|_| Mutex::new(HashMap::new())).collect()),
            dropped: AtomicBool::new(false),
        }
    }

    /// Mirrors a write into the part's backup replica, if any.
    pub(crate) fn mirror_insert(&self, part: PartId, key: &RoutedKey, value: &Bytes) {
        if let Some(backup) = &self.backup {
            backup[part.index()]
                .lock()
                .insert(key.clone(), value.clone());
        }
    }

    /// Mirrors a removal into the part's backup replica, if any.
    pub(crate) fn mirror_remove(&self, part: PartId, key: &RoutedKey) {
        if let Some(backup) = &self.backup {
            backup[part.index()].lock().remove(key);
        }
    }

    /// Resynchronizes the backup replica from the primary after a bulk
    /// mutation (clear, drain, restore).
    pub(crate) fn resync_backup(&self, part: PartId) {
        if let Some(backup) = &self.backup {
            let snapshot = self.parts[part.index()].lock().clone();
            *backup[part.index()].lock() = snapshot;
        }
    }

    pub(crate) fn check_live(&self) -> Result<(), KvError> {
        if self.dropped.load(Ordering::Acquire) {
            return Err(KvError::TableDropped {
                name: self.name.clone(),
            });
        }
        Ok(())
    }

    pub(crate) fn check_part_healthy(&self, part: PartId) -> Result<(), KvError> {
        if !self.ubiquitous && self.partitioning.is_failed(part) {
            return Err(KvError::PartFailed { part: part.0 });
        }
        Ok(())
    }

    fn target_part(&self, key: &RoutedKey) -> PartId {
        if self.ubiquitous {
            PartId(0)
        } else {
            key.part_for(self.partitioning.parts)
        }
    }
}

/// Handle to a [`MemStore`](crate::MemStore) table.
///
/// Operations issued by mobile code running at the addressed part access the
/// data directly; any other caller is treated as remote — the operation is
/// marshalled (bytes counted) and served by the part's short-request lane,
/// as in the paper's debugging store.
#[derive(Debug, Clone)]
pub struct MemTable {
    pub(crate) store: Arc<StoreInner>,
    pub(crate) inner: Arc<TableInner>,
}

impl MemTable {
    /// Whether the calling thread is collocated with `part` of this table.
    fn is_local(&self, part: PartId) -> bool {
        if self.inner.ubiquitous {
            // Ubiquitous tables are replicated: every read location is local.
            return true;
        }
        current_locality() == Some((self.inner.partitioning.id, part.0))
    }

    /// Runs `op` against the part map, either directly (local) or via the
    /// part's short lane (remote), adding `req_bytes` to the marshalling
    /// account in the remote case.
    fn at_part<R, F>(&self, part: PartId, req_bytes: usize, op: F) -> Result<R, KvError>
    where
        R: Send + 'static,
        F: FnOnce(&TableInner, PartId) -> R + Send + 'static,
    {
        self.inner.check_live()?;
        self.inner.check_part_healthy(part)?;
        if self.is_local(part) {
            self.store.counters.local_op(part);
            return Ok(op(&self.inner, part));
        }
        self.store.counters.remote_op(part, req_bytes as u64);
        let (tx, rx) = bounded(1);
        let inner = Arc::clone(&self.inner);
        self.inner
            .partitioning
            .lanes(part)
            .submit_short(Box::new(move || {
                let out = op(&inner, part);
                let _ = tx.send(out);
            }));
        rx.recv().map_err(|_| KvError::StoreClosed)
    }
}

impl Table for MemTable {
    fn name(&self) -> &str {
        &self.inner.name
    }

    fn part_count(&self) -> u32 {
        self.inner.parts.len() as u32
    }

    fn is_ubiquitous(&self) -> bool {
        self.inner.ubiquitous
    }

    fn partitioning_id(&self) -> u64 {
        self.inner.partitioning.id
    }

    fn get(&self, key: &RoutedKey) -> Result<Option<Bytes>, KvError> {
        let part = self.inner.target_part(key);
        let k = key.clone();
        let req = key.wire_len();
        let value = self.at_part(part, req, move |inner, p| {
            inner.parts[p.index()].lock().get(&k).cloned()
        })?;
        if let (Some(v), false) = (&value, self.is_local(part)) {
            self.store.counters.reply_bytes(part, v.len() as u64);
        }
        Ok(value)
    }

    fn put(&self, key: RoutedKey, value: Bytes) -> Result<Option<Bytes>, KvError> {
        let part = self.inner.target_part(&key);
        let req = key.wire_len() + value.len();
        self.at_part(part, req, move |inner, p| {
            inner.mirror_insert(p, &key, &value);
            inner.parts[p.index()].lock().insert(key, value)
        })
    }

    fn delete(&self, key: &RoutedKey) -> Result<bool, KvError> {
        let part = self.inner.target_part(key);
        let k = key.clone();
        self.at_part(part, key.wire_len(), move |inner, p| {
            inner.mirror_remove(p, &k);
            inner.parts[p.index()].lock().remove(&k).is_some()
        })
    }

    fn len(&self) -> Result<usize, KvError> {
        self.inner.check_live()?;
        let mut total = 0;
        for (i, part) in self.inner.parts.iter().enumerate() {
            self.inner.check_part_healthy(PartId(i as u32))?;
            total += part.lock().len();
        }
        self.store.counters.local_op_unattributed();
        Ok(total)
    }

    fn clear(&self) -> Result<(), KvError> {
        self.inner.check_live()?;
        for (i, part) in self.inner.parts.iter().enumerate() {
            self.inner.check_part_healthy(PartId(i as u32))?;
            part.lock().clear();
            self.inner.resync_backup(PartId(i as u32));
        }
        self.store.counters.local_op_unattributed();
        Ok(())
    }
}
