//! Pooled, pipelined connections to a set of part servers, with
//! client-side failover for replicated part slots.
//!
//! The pool keeps at most one TCP connection per *group member* and
//! multiplexes every request over it: each request gets a fresh id, the
//! response frames are matched back by id on a dedicated reader thread, so
//! many callers (one engine worker per part, typically) share one socket
//! without head-of-line blocking on the request side.
//!
//! Failure model: any I/O error on a connection marks it dead, fails all
//! in-flight requests with [`KvError::Transient`], and drops the socket.
//! The next request to that member reconnects lazily — within a bounded
//! connect timeout, so a black-holed peer cannot hang a worker thread.
//! For replicated slots the reconnect consults the [`Membership`] first: a
//! refused connect (or failed fencing handshake) marks the member down and
//! promotes a standby, so the engine's existing retry policy heals a
//! killed primary exactly the way it heals a severed connection — the
//! error kind is the same one the fault-injection stores produce.
//!
//! Connections to replicated members are **fenced**: opening one performs
//! a [`REQ_HELLO`](crate::proto::REQ_HELLO) handshake announcing the
//! client's group epoch.  A server that has seen a newer epoch refuses the
//! handshake (and any data-plane request on a stale connection) with
//! [`KvError::StaleEpoch`]; the pool observes the newer epoch, discards
//! the connection, and surfaces `Transient` so the retried operation
//! re-handshakes at the current fence.

use std::io::Write;
use std::net::{Shutdown, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Receiver, Sender};
use ripple_kv::KvError;
use ripple_wire::{from_wire, msg_len, read_msg_from, to_wire, write_msg, MsgFrame};

use crate::dispatch::Dispatch;
use crate::membership::Membership;
use crate::metrics::NetCounters;
use crate::proto::{self, RESP_CHUNK, RESP_ERR, RESP_OK};

/// Default bound on waiting for a response frame before reporting the
/// request as transiently failed.
pub const RESPONSE_TIMEOUT: Duration = Duration::from_secs(30);

/// Default bound on establishing a TCP connection to a part server.
pub const CONNECT_TIMEOUT: Duration = Duration::from_secs(5);

type FrameResult = Result<MsgFrame, KvError>;

/// One live connection: a shared writer, the response-dispatch table, and
/// the socket handle kept for shutdown, tagged with the group member it
/// reaches.
struct Connection {
    writer: Mutex<TcpStream>,
    dispatch: Dispatch<Sender<FrameResult>>,
    stream: TcpStream,
    slot: usize,
    member: usize,
    /// Ensures one dead connection contributes at most one suspicion
    /// strike, however many requests observe its death.
    failure_recorded: AtomicBool,
}

impl Connection {
    /// Marks the connection dead and fails every in-flight request.  The
    /// dispatch table's kill is atomic with its death mark, so a request
    /// racing this call either gets drained here or is refused at
    /// registration — it can never be stranded waiting for a response.
    fn fail_all(&self, detail: &str) {
        for (_, tx) in self.dispatch.kill() {
            let _ = tx.send(Err(KvError::Transient {
                op: "recv",
                part: 0,
                detail: detail.to_owned(),
            }));
        }
    }

    /// Records this connection's death as failure evidence against its
    /// member, exactly once per connection.
    fn report_failure(&self, membership: &Membership) {
        if !self.failure_recorded.swap(true, Ordering::SeqCst) {
            membership.record_failure(self.slot, self.member);
        }
    }
}

/// A handle on one in-flight request's response stream.
pub struct Pending {
    rx: Receiver<FrameResult>,
    started: Instant,
    deadline: Duration,
    conn: Arc<Connection>,
    membership: Arc<Membership>,
    metrics: Arc<NetCounters>,
    /// Frame bytes the request put on the wire, so a transiently failed
    /// request can attribute its wasted send to `retry_bytes` (the retry
    /// re-sends an equivalent frame).
    req_bytes: u64,
    /// Whether stale-epoch refusals should be absorbed (epoch observed,
    /// connection recycled, `Transient` surfaced).  False only for the
    /// handshake itself, which handles the refusal directly.
    fenced: bool,
}

impl Pending {
    /// Waits for the next response frame, bounded by the pool's response
    /// deadline.
    ///
    /// # Errors
    ///
    /// [`KvError::Transient`] on timeout or connection loss; the decoded
    /// remote error if the server answered with `RESP_ERR`.
    pub fn recv(&self) -> Result<MsgFrame, KvError> {
        let frame = match self.rx.recv_timeout(self.deadline) {
            Ok(Ok(frame)) => frame,
            Ok(Err(e)) => {
                // The connection died under this request; its send was
                // wasted and the engine's retry re-sends an equivalent
                // frame, so attribute the bytes to retry traffic.
                NetCounters::add(&self.metrics.retry_bytes, self.req_bytes);
                return Err(e);
            }
            Err(_) => {
                // A silent peer within the deadline: recycle the
                // connection (its responses can no longer be trusted to
                // arrive) and count the evidence against the member.
                let _ = self.conn.stream.shutdown(Shutdown::Both);
                self.conn.fail_all("response deadline exceeded");
                self.conn.report_failure(&self.membership);
                NetCounters::add(&self.metrics.retry_bytes, self.req_bytes);
                return Err(KvError::Transient {
                    op: "recv",
                    part: 0,
                    detail: format!("no part-server response within {:?}", self.deadline),
                });
            }
        };
        if frame.kind == RESP_ERR {
            self.metrics.observe_latency(self.started);
            let err = proto::decode_err(&frame.payload);
            if self.fenced {
                if let KvError::StaleEpoch { seen, current } = err {
                    // Someone fenced the group past us.  Adopt the newer
                    // epoch, retire this stale connection, and let the
                    // retried operation re-handshake at the current fence.
                    self.membership.observe_epoch(self.conn.slot, current);
                    NetCounters::add(&self.metrics.retries, 1);
                    NetCounters::add(&self.metrics.retry_bytes, self.req_bytes);
                    let _ = self.conn.stream.shutdown(Shutdown::Both);
                    self.conn.fail_all("stale-epoch connection retired");
                    return Err(KvError::Transient {
                        op: "recv",
                        part: 0,
                        detail: format!(
                            "request fenced out (epoch {seen} < {current}); retry re-handshakes"
                        ),
                    });
                }
            }
            return Err(err);
        }
        if frame.kind != RESP_CHUNK {
            // RESP_OK / RESP_END terminate the request.
            self.metrics.observe_latency(self.started);
            self.membership
                .record_success(self.conn.slot, self.conn.member);
        }
        Ok(frame)
    }
}

/// Connection pool over the replica groups of a part-server cluster.
pub struct Pool {
    membership: Arc<Membership>,
    /// `conns[slot][member]` — one lazily opened connection per group
    /// member.
    conns: Vec<Vec<Mutex<Option<Arc<Connection>>>>>,
    /// Whether `(slot, member)` has ever connected, for the reconnect
    /// counter.
    ever_connected: Vec<Vec<AtomicBool>>,
    next_id: AtomicU64,
    metrics: Arc<NetCounters>,
    connect_timeout: Duration,
    /// Response deadline in microseconds; mutable at runtime via
    /// [`Pool::set_deadline`].
    deadline_us: AtomicU64,
}

impl std::fmt::Debug for Pool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pool")
            .field("membership", &self.membership)
            .finish_non_exhaustive()
    }
}

impl Pool {
    /// Creates a pool over `membership`'s groups; connections are opened
    /// lazily.
    pub fn new(
        membership: Arc<Membership>,
        metrics: Arc<NetCounters>,
        connect_timeout: Duration,
        response_timeout: Duration,
    ) -> Self {
        let conns = (0..membership.slots())
            .map(|slot| {
                (0..membership.group_size(slot))
                    .map(|_| Mutex::new(None))
                    .collect()
            })
            .collect();
        let ever_connected = (0..membership.slots())
            .map(|slot| {
                (0..membership.group_size(slot))
                    .map(|_| AtomicBool::new(false))
                    .collect()
            })
            .collect();
        Self {
            membership,
            conns,
            ever_connected,
            next_id: AtomicU64::new(1),
            metrics,
            connect_timeout,
            deadline_us: AtomicU64::new(duration_us(response_timeout)),
        }
    }

    /// Number of part slots this pool speaks to.
    pub fn servers(&self) -> usize {
        self.membership.slots()
    }

    /// The shared membership view.
    pub fn membership(&self) -> &Arc<Membership> {
        &self.membership
    }

    /// Bounds how long [`Pending::recv`] waits for a response; `None`
    /// restores the default ([`RESPONSE_TIMEOUT`]).
    pub fn set_deadline(&self, deadline: Option<Duration>) {
        self.deadline_us.store(
            duration_us(deadline.unwrap_or(RESPONSE_TIMEOUT)),
            Ordering::Relaxed,
        );
    }

    fn deadline(&self) -> Duration {
        Duration::from_micros(self.deadline_us.load(Ordering::Relaxed))
    }

    /// Sends one request frame to the current primary of `slot` and
    /// returns a handle for its response stream, failing over to a standby
    /// if the primary cannot be reached.
    ///
    /// # Errors
    ///
    /// [`KvError::Transient`] if connecting or writing fails on every
    /// reachable member.
    pub fn request(&self, slot: usize, kind: u8, payload: &[u8]) -> Result<Pending, KvError> {
        let conn = self.connection(slot)?;
        self.start_request(&conn, kind, payload, true)
    }

    /// Like [`Pool::request`], addressed to a specific group member
    /// (replicated writes reach standbys through this).
    ///
    /// # Errors
    ///
    /// [`KvError::Transient`] if connecting or writing fails.
    pub fn request_member(
        &self,
        slot: usize,
        member: usize,
        kind: u8,
        payload: &[u8],
    ) -> Result<Pending, KvError> {
        let conn = self.member_connection(slot, member)?;
        self.start_request(&conn, kind, payload, true)
    }

    /// Sends a request to `slot`'s primary and waits for its single
    /// `RESP_OK` payload.
    ///
    /// # Errors
    ///
    /// [`KvError::Transient`] on connection trouble or timeout, or the
    /// decoded remote error.
    pub fn unary(&self, slot: usize, kind: u8, payload: &[u8]) -> Result<Vec<u8>, KvError> {
        let pending = self.request(slot, kind, payload)?;
        let frame = pending.recv()?;
        debug_assert_eq!(frame.kind, RESP_OK);
        Ok(frame.payload)
    }

    /// Sends a request to a specific member of `slot` and waits for its
    /// single `RESP_OK` payload.
    ///
    /// # Errors
    ///
    /// [`KvError::Transient`] on connection trouble or timeout, or the
    /// decoded remote error.
    pub fn unary_member(
        &self,
        slot: usize,
        member: usize,
        kind: u8,
        payload: &[u8],
    ) -> Result<Vec<u8>, KvError> {
        let pending = self.request_member(slot, member, kind, payload)?;
        let frame = pending.recv()?;
        debug_assert_eq!(frame.kind, RESP_OK);
        Ok(frame.payload)
    }

    /// Severs every open connection at the socket level.  In-flight and
    /// subsequent requests observe [`KvError::Transient`]; later requests
    /// reconnect.  Exists for fault-injection tests.
    pub fn sever(&self) {
        for group in &self.conns {
            for member in group {
                let conn = member.lock().unwrap_or_else(PoisonError::into_inner).take();
                if let Some(conn) = conn {
                    let _ = conn.stream.shutdown(Shutdown::Both);
                    conn.fail_all("connection severed");
                }
            }
        }
    }

    fn start_request(
        &self,
        conn: &Arc<Connection>,
        kind: u8,
        payload: &[u8],
        fenced: bool,
    ) -> Result<Pending, KvError> {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let (tx, rx) = unbounded();
        if !conn.dispatch.register(id, tx) {
            // The reader thread declared the connection dead between our
            // lookup and this registration; fail fast instead of waiting a
            // full response deadline for a reply that cannot arrive.
            return Err(KvError::Transient {
                op: "send",
                part: 0,
                detail: "connection lost before send".to_owned(),
            });
        }
        let started = Instant::now();

        let mut buf = Vec::with_capacity(msg_len(payload.len()));
        write_msg(&mut buf, kind, id, payload);
        let write_result = {
            let mut writer = conn.writer.lock().unwrap_or_else(PoisonError::into_inner);
            writer.write_all(&buf)
        };
        if let Err(e) = write_result {
            conn.dispatch.take(id);
            conn.fail_all(&format!("write failed: {e}"));
            conn.report_failure(&self.membership);
            return Err(KvError::Transient {
                op: "send",
                part: 0,
                detail: format!("writing to part server: {e}"),
            });
        }
        NetCounters::add(&self.metrics.rpcs, 1);
        NetCounters::add(&self.metrics.bytes_out, buf.len() as u64);
        Ok(Pending {
            rx,
            started,
            deadline: self.deadline(),
            conn: Arc::clone(conn),
            membership: Arc::clone(&self.membership),
            metrics: Arc::clone(&self.metrics),
            req_bytes: buf.len() as u64,
            fenced,
        })
    }

    /// A live connection to the current primary of `slot`, failing over
    /// through the membership until a member accepts (or none is left).
    fn connection(&self, slot: usize) -> Result<Arc<Connection>, KvError> {
        // Each failed attempt either promotes (new primary next round) or
        // proves the group lost; the bound is defensive.
        let attempts = self.membership.group_size(slot) + 1;
        let mut last_err = None;
        for _ in 0..attempts {
            let (member, _, _) = self.membership.primary(slot);
            match self.member_connection(slot, member) {
                Ok(conn) => return Ok(conn),
                Err(e) => {
                    last_err = Some(e);
                    // Hard evidence: a *fresh* connection could not be
                    // established (or fenced).  Mark the member down and
                    // promote; if the primary is unchanged, nobody is left
                    // to fail over to.
                    self.membership.member_unreachable(slot, member);
                    if self.membership.primary(slot).0 == member {
                        break;
                    }
                }
            }
        }
        Err(last_err.unwrap_or(KvError::Transient {
            op: "connect",
            part: 0,
            detail: "no reachable member".to_owned(),
        }))
    }

    /// A live connection to member `member` of `slot`, opening (and for
    /// replicated groups, handshaking) one if needed.
    fn member_connection(&self, slot: usize, member: usize) -> Result<Arc<Connection>, KvError> {
        let mut cell = self.conns[slot][member]
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        if let Some(conn) = cell.as_ref() {
            if !conn.dispatch.is_dead() {
                return Ok(Arc::clone(conn));
            }
            let _ = conn.stream.shutdown(Shutdown::Both);
            *cell = None;
        }
        let addr = self.membership.member_addr(slot, member);
        let stream = TcpStream::connect_timeout(&addr, self.connect_timeout).map_err(|e| {
            KvError::Transient {
                op: "connect",
                part: 0,
                detail: format!("connecting to {addr}: {e}"),
            }
        })?;
        let reconnected = self.ever_connected[slot][member].swap(true, Ordering::Relaxed);
        if reconnected {
            NetCounters::add(&self.metrics.reconnects, 1);
        }
        let _ = stream.set_nodelay(true);
        let clone_err = |e: std::io::Error| KvError::Transient {
            op: "connect",
            part: 0,
            detail: format!("cloning stream to {addr}: {e}"),
        };
        let reader = stream.try_clone().map_err(clone_err)?;
        let conn = Arc::new(Connection {
            writer: Mutex::new(stream.try_clone().map_err(clone_err)?),
            dispatch: Dispatch::new(),
            stream,
            slot,
            member,
            failure_recorded: AtomicBool::new(false),
        });
        spawn_reader(
            Arc::clone(&conn),
            reader,
            Arc::clone(&self.metrics),
            Arc::clone(&self.membership),
        );
        if self.membership.replicated(slot) {
            self.handshake(&conn, reconnected)?;
        }
        *cell = Some(Arc::clone(&conn));
        Ok(conn)
    }

    /// Announces the client's group epoch on a fresh connection to a
    /// replicated member.  A stale-epoch refusal adopts the server's
    /// newer epoch and redoes the handshake once.
    ///
    /// Handshake frames on a *re*-connected (or redone) handshake are
    /// heal traffic, attributed to `retry_bytes`.
    fn handshake(&self, conn: &Arc<Connection>, reconnect: bool) -> Result<(), KvError> {
        for redo in 0..2 {
            let epoch = self.membership.epoch(conn.slot);
            let pending = self.start_request(conn, proto::REQ_HELLO, &to_wire(&epoch), false)?;
            if reconnect || redo > 0 {
                NetCounters::add(&self.metrics.retry_bytes, pending.req_bytes);
            }
            match pending.recv() {
                Ok(frame) => {
                    let current: u64 = from_wire(&frame.payload).unwrap_or(epoch);
                    self.membership.observe_epoch(conn.slot, current);
                    return Ok(());
                }
                Err(KvError::StaleEpoch { current, .. }) if redo == 0 => {
                    self.membership.observe_epoch(conn.slot, current);
                    NetCounters::add(&self.metrics.retries, 1);
                }
                Err(e) => {
                    let _ = conn.stream.shutdown(Shutdown::Both);
                    conn.fail_all("handshake failed");
                    return Err(e);
                }
            }
        }
        unreachable!("handshake loop returns within two iterations")
    }
}

fn duration_us(d: Duration) -> u64 {
    u64::try_from(d.as_micros()).unwrap_or(u64::MAX)
}

/// Reader thread: decodes response frames and routes them to the pending
/// request they answer.  Terminal frames (`RESP_OK`, `RESP_ERR`,
/// `RESP_END`) retire the pending entry; `RESP_CHUNK` keeps it open for
/// the rest of the stream.  Connection death fails everything in flight
/// and counts one suspicion strike against the member.
fn spawn_reader(
    conn: Arc<Connection>,
    mut stream: TcpStream,
    metrics: Arc<NetCounters>,
    membership: Arc<Membership>,
) {
    std::thread::Builder::new()
        .name("net-store-reader".to_owned())
        .spawn(move || loop {
            let frame = match read_msg_from(&mut stream) {
                Ok(frame) => frame,
                Err(e) => {
                    conn.fail_all(&format!("connection lost: {e}"));
                    conn.report_failure(&membership);
                    return;
                }
            };
            NetCounters::add(&metrics.bytes_in, msg_len(frame.payload.len()) as u64);
            let id = frame.id;
            if frame.kind == RESP_CHUNK {
                let abandoned = conn.dispatch.with(id, |tx| tx.send(Ok(frame)).is_err());
                if abandoned == Some(true) {
                    // Receiver abandoned the stream; stop routing to it.
                    conn.dispatch.take(id);
                }
            } else {
                // Terminal frame: retire the pending entry.  A duplicated
                // terminal frame (chaos) finds nothing and is dropped.
                if let Some(tx) = conn.dispatch.take(id) {
                    let _ = tx.send(Ok(frame));
                }
            }
        })
        .expect("spawn reader thread");
}
