//! Pooled, pipelined connections to a set of part servers.
//!
//! The pool keeps at most one TCP connection per server and multiplexes
//! every request over it: each request gets a fresh id, the response
//! frames are matched back by id on a dedicated reader thread, so many
//! callers (one engine worker per part, typically) share one socket
//! without head-of-line blocking on the request side.
//!
//! Failure model: any I/O error on a connection marks it dead, fails all
//! in-flight requests with [`KvError::Transient`], and drops the socket.
//! The next request to that server reconnects lazily.  This is what lets
//! the engine's existing retry policy heal a severed connection — the
//! error kind is the same one the fault-injection stores produce.

use std::io::Write;
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Receiver, Sender};
use ripple_kv::KvError;
use ripple_wire::{msg_len, read_msg_from, write_msg, MsgFrame};

use crate::dispatch::Dispatch;
use crate::metrics::NetCounters;
use crate::proto::{self, RESP_CHUNK, RESP_ERR, RESP_OK};

/// How long a caller waits for a response frame before reporting the
/// request as transiently failed.
pub const RESPONSE_TIMEOUT: Duration = Duration::from_secs(30);

type FrameResult = Result<MsgFrame, KvError>;

/// One live connection: a shared writer, the response-dispatch table, and
/// the socket handle kept for shutdown.
struct Connection {
    writer: Mutex<TcpStream>,
    dispatch: Dispatch<Sender<FrameResult>>,
    stream: TcpStream,
}

impl Connection {
    /// Marks the connection dead and fails every in-flight request.  The
    /// dispatch table's kill is atomic with its death mark, so a request
    /// racing this call either gets drained here or is refused at
    /// registration — it can never be stranded waiting for a response.
    fn fail_all(&self, detail: &str) {
        for (_, tx) in self.dispatch.kill() {
            let _ = tx.send(Err(KvError::Transient {
                op: "recv",
                part: 0,
                detail: detail.to_owned(),
            }));
        }
    }
}

/// A handle on one in-flight request's response stream.
pub struct Pending {
    rx: Receiver<FrameResult>,
    started: Instant,
    metrics: Arc<NetCounters>,
}

impl Pending {
    /// Waits for the next response frame.
    ///
    /// # Errors
    ///
    /// [`KvError::Transient`] on timeout or connection loss; the decoded
    /// remote error if the server answered with `RESP_ERR`.
    pub fn recv(&self) -> Result<MsgFrame, KvError> {
        let frame = self
            .rx
            .recv_timeout(RESPONSE_TIMEOUT)
            .map_err(|_| KvError::Transient {
                op: "recv",
                part: 0,
                detail: "timed out waiting for part-server response".to_owned(),
            })??;
        if frame.kind == RESP_ERR {
            self.metrics.observe_latency(self.started);
            return Err(proto::decode_err(&frame.payload));
        }
        if frame.kind != RESP_CHUNK {
            // RESP_OK / RESP_END terminate the request.
            self.metrics.observe_latency(self.started);
        }
        Ok(frame)
    }
}

/// Connection pool over an ordered list of part-server addresses.
pub struct Pool {
    addrs: Vec<SocketAddr>,
    conns: Vec<Mutex<Option<Arc<Connection>>>>,
    next_id: AtomicU64,
    metrics: Arc<NetCounters>,
}

impl std::fmt::Debug for Pool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pool")
            .field("addrs", &self.addrs)
            .finish_non_exhaustive()
    }
}

impl Pool {
    /// Creates a pool over `addrs`; connections are opened lazily.
    pub fn new(addrs: Vec<SocketAddr>, metrics: Arc<NetCounters>) -> Self {
        let conns = addrs.iter().map(|_| Mutex::new(None)).collect();
        Self {
            addrs,
            conns,
            next_id: AtomicU64::new(1),
            metrics,
        }
    }

    /// Number of servers this pool speaks to.
    pub fn servers(&self) -> usize {
        self.addrs.len()
    }

    /// Sends one request frame to `server` and returns a handle for its
    /// response stream.
    ///
    /// # Errors
    ///
    /// [`KvError::Transient`] if connecting or writing fails.
    ///
    /// # Panics
    ///
    /// Panics if `server` is out of range; the caller derives server
    /// indices from the same address list.
    pub fn request(&self, server: usize, kind: u8, payload: &[u8]) -> Result<Pending, KvError> {
        let conn = self.connection(server)?;
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let (tx, rx) = unbounded();
        if !conn.dispatch.register(id, tx) {
            // The reader thread declared the connection dead between our
            // lookup and this registration; fail fast instead of waiting a
            // full response timeout for a reply that cannot arrive.
            return Err(KvError::Transient {
                op: "send",
                part: 0,
                detail: format!("connection to {} lost before send", self.addrs[server]),
            });
        }
        let started = Instant::now();

        let mut buf = Vec::with_capacity(msg_len(payload.len()));
        write_msg(&mut buf, kind, id, payload);
        let write_result = {
            let mut writer = conn.writer.lock().expect("writer lock");
            writer.write_all(&buf)
        };
        if let Err(e) = write_result {
            conn.dispatch.take(id);
            conn.fail_all(&format!("write failed: {e}"));
            return Err(KvError::Transient {
                op: "send",
                part: 0,
                detail: format!("writing to {}: {e}", self.addrs[server]),
            });
        }
        NetCounters::add(&self.metrics.rpcs, 1);
        NetCounters::add(&self.metrics.bytes_out, buf.len() as u64);
        Ok(Pending {
            rx,
            started,
            metrics: Arc::clone(&self.metrics),
        })
    }

    /// Sends a request and waits for its single `RESP_OK` payload.
    ///
    /// # Errors
    ///
    /// [`KvError::Transient`] on connection trouble or timeout, or the
    /// decoded remote error.
    pub fn unary(&self, server: usize, kind: u8, payload: &[u8]) -> Result<Vec<u8>, KvError> {
        let pending = self.request(server, kind, payload)?;
        let frame = pending.recv()?;
        debug_assert_eq!(frame.kind, RESP_OK);
        Ok(frame.payload)
    }

    /// Severs every open connection at the socket level.  In-flight and
    /// subsequent requests observe [`KvError::Transient`]; later requests
    /// reconnect.  Exists for fault-injection tests.
    ///
    /// # Panics
    ///
    /// Panics if a connection-slot lock was poisoned by a panicking
    /// thread.
    pub fn sever(&self) {
        for slot in &self.conns {
            let conn = slot.lock().expect("conn slot lock").take();
            if let Some(conn) = conn {
                let _ = conn.stream.shutdown(Shutdown::Both);
                conn.fail_all("connection severed");
            }
        }
    }

    fn connection(&self, server: usize) -> Result<Arc<Connection>, KvError> {
        let mut slot = self.conns[server].lock().expect("conn slot lock");
        if let Some(conn) = slot.as_ref() {
            if !conn.dispatch.is_dead() {
                return Ok(Arc::clone(conn));
            }
            let _ = conn.stream.shutdown(Shutdown::Both);
            *slot = None;
        }
        let addr = self.addrs[server];
        let stream = TcpStream::connect(addr).map_err(|e| KvError::Transient {
            op: "connect",
            part: 0,
            detail: format!("connecting to {addr}: {e}"),
        })?;
        let _ = stream.set_nodelay(true);
        let reader = stream.try_clone().map_err(|e| KvError::Transient {
            op: "connect",
            part: 0,
            detail: format!("cloning stream to {addr}: {e}"),
        })?;
        let conn = Arc::new(Connection {
            writer: Mutex::new(stream.try_clone().map_err(|e| KvError::Transient {
                op: "connect",
                part: 0,
                detail: format!("cloning stream to {addr}: {e}"),
            })?),
            dispatch: Dispatch::new(),
            stream,
        });
        spawn_reader(Arc::clone(&conn), reader, Arc::clone(&self.metrics));
        *slot = Some(Arc::clone(&conn));
        Ok(conn)
    }
}

/// Reader thread: decodes response frames and routes them to the pending
/// request they answer.  Terminal frames (`RESP_OK`, `RESP_ERR`,
/// `RESP_END`) retire the pending entry; `RESP_CHUNK` keeps it open for
/// the rest of the stream.
fn spawn_reader(conn: Arc<Connection>, mut stream: TcpStream, metrics: Arc<NetCounters>) {
    std::thread::Builder::new()
        .name("net-store-reader".to_owned())
        .spawn(move || loop {
            let frame = match read_msg_from(&mut stream) {
                Ok(frame) => frame,
                Err(e) => {
                    conn.fail_all(&format!("connection lost: {e}"));
                    return;
                }
            };
            NetCounters::add(&metrics.bytes_in, msg_len(frame.payload.len()) as u64);
            let id = frame.id;
            if frame.kind == RESP_CHUNK {
                let abandoned = conn.dispatch.with(id, |tx| tx.send(Ok(frame)).is_err());
                if abandoned == Some(true) {
                    // Receiver abandoned the stream; stop routing to it.
                    conn.dispatch.take(id);
                }
            } else {
                // Terminal frame: retire the pending entry.
                if let Some(tx) = conn.dispatch.take(id) {
                    let _ = tx.send(Ok(frame));
                }
            }
        })
        .expect("spawn reader thread");
}
