//! Client side: [`NetStore`], a [`KvStore`] whose tables live on part
//! servers.
//!
//! # Topology
//!
//! The store is constructed from an ordered list of part slots, each
//! served by a **replica group** (a primary plus optional standbys; see
//! [`NetStore::connect_replicated`]).  Part `p` of every table belongs to
//! slot `p % slots`; ubiquitous tables are replicated on every server
//! (writes broadcast, reads hit slot 0 on the client path and any local
//! replica on the server path).  DDL is broadcast to all servers under a
//! client-side lock so every server keeps an identically-shaped inner
//! store; table metadata is taken from slot 0's response and cached in a
//! client-side catalog.
//!
//! # Replication and failover
//!
//! Data-plane writes to a replicated slot reach every live group member
//! (primary first — it must succeed — then standbys, which are retried
//! once and then marked permanently down); reads and enumerations go to
//! the primary only.  When the primary dies, the connection pool promotes
//! a standby at a higher fencing epoch and the operation surfaces
//! [`KvError::Transient`], which the engines' retry policies already heal
//! — so a job killed mid-superstep replays from the last barrier against
//! the promoted replica.  An optional heartbeat thread
//! ([`NetConfig::heartbeat_interval`]) probes primaries so a silent
//! server is detected even between requests.  Mutations performed inside
//! *named tasks* ([`KvStore::run_named_at`]) run on the primary only and
//! are **not** replicated to standbys — replicated deployments should
//! confine named-task writes to recomputable state.
//!
//! # Mobile code
//!
//! Closures cannot cross the wire, so [`KvStore::run_at`] on a `NetStore`
//! runs the closure *on the client* against a remote [`PartView`] that
//! ships data instead of code — every view operation becomes a request to
//! the owning server.  [`KvStore::run_named_at`] is the genuine Ripple
//! dispatch path: it forwards the registered task's name and argument to
//! the part's owning server, which runs the registration adjacent to the
//! data.

use std::collections::HashMap;
use std::net::SocketAddr;
use std::panic::AssertUnwindSafe;
use std::sync::{Arc, Mutex, PoisonError, Weak};
use std::time::Duration;

use bytes::Bytes;
use crossbeam::channel::bounded;
use ripple_kv::{
    KvError, KvStore, MembershipView, PartId, PartView, RoutedKey, ScanControl, StoreEventSink,
    StoreMetrics, Table, TableSpec, TaskHandle,
};
use ripple_wire::{from_wire, msg_len, to_wire};

use crate::membership::Membership;
use crate::metrics::NetCounters;
use crate::pool::{Pending, Pool, CONNECT_TIMEOUT, RESPONSE_TIMEOUT};
use crate::proto::{self, TableMeta};

/// Tunables for a [`NetStore`]'s failure behaviour.
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// Bound on establishing a TCP connection to a part server.
    pub connect_timeout: Duration,
    /// Bound on waiting for any single response frame (overridable at
    /// runtime through
    /// [`KvStore::set_op_deadline`](ripple_kv::KvStore::set_op_deadline)).
    pub response_timeout: Duration,
    /// Interval of the background heartbeat probe against each replicated
    /// slot's primary; `None` (the default) disables the detector and
    /// leaves failure detection to the request path.
    pub heartbeat_interval: Option<Duration>,
    /// Consecutive heartbeat misses tolerated before the primary is
    /// deposed.
    pub heartbeat_grace: u32,
}

impl Default for NetConfig {
    fn default() -> Self {
        Self {
            connect_timeout: CONNECT_TIMEOUT,
            response_timeout: RESPONSE_TIMEOUT,
            heartbeat_interval: None,
            heartbeat_grace: 3,
        }
    }
}

fn decode<T: ripple_wire::Decode>(payload: &[u8]) -> Result<T, KvError> {
    from_wire(payload).map_err(|e| KvError::Backend {
        detail: format!("malformed response payload: {e}"),
    })
}

#[derive(Debug)]
struct Shared {
    pool: Pool,
    metrics: Arc<NetCounters>,
    catalog: Mutex<HashMap<String, TableMeta>>,
    /// Serializes DDL broadcasts so all servers see them in one order.
    ddl: Mutex<()>,
}

impl Shared {
    fn servers(&self) -> usize {
        self.pool.servers()
    }

    fn membership(&self) -> &Arc<Membership> {
        self.pool.membership()
    }

    /// The slot owning part `part` of any table.
    fn owner(&self, part: u32) -> usize {
        part as usize % self.servers()
    }

    fn unary(&self, slot: usize, kind: u8, payload: &[u8]) -> Result<Vec<u8>, KvError> {
        self.pool.unary(slot, kind, payload)
    }

    /// A write that must reach every live member of `slot`'s group: the
    /// primary synchronously and fatally, standbys with one retry before
    /// they are marked permanently down (a down standby is never promoted,
    /// so giving up on it cannot resurrect stale data).  Returns the
    /// primary's response.
    fn replicated_write(&self, slot: usize, kind: u8, payload: &[u8]) -> Result<Vec<u8>, KvError> {
        let resp = self.pool.unary(slot, kind, payload)?;
        let membership = self.membership();
        if membership.replicated(slot) {
            for member in membership.live_standbys(slot) {
                if self.pool.unary_member(slot, member, kind, payload).is_err() {
                    NetCounters::add(&self.metrics.retries, 1);
                    // The retry re-sends the whole frame; that second send
                    // is heal traffic, not useful h-relation bytes.
                    NetCounters::add(&self.metrics.retry_bytes, msg_len(payload.len()) as u64);
                    if self.pool.unary_member(slot, member, kind, payload).is_err() {
                        membership.mark_standby_down(slot, member);
                    }
                }
            }
        }
        Ok(resp)
    }

    /// Sends the same request to every server (all slots, all live group
    /// members) in index order and returns slot 0's primary response.
    /// Used for DDL and ubiquitous-table writes, which must reach every
    /// replica.
    fn broadcast(&self, kind: u8, payload: &[u8]) -> Result<Vec<u8>, KvError> {
        let mut first = None;
        for slot in 0..self.servers() {
            let resp = self.replicated_write(slot, kind, payload)?;
            if slot == 0 {
                first = Some(resp);
            }
        }
        Ok(first.expect("at least one server"))
    }

    /// Table metadata by name: catalog hit, or a lookup on slot 0.
    fn meta_for(&self, table: &str) -> Result<TableMeta, KvError> {
        if let Some(meta) = self.lock_catalog().get(table) {
            return Ok(*meta);
        }
        let meta =
            TableMeta::decode(&self.unary(0, proto::REQ_LOOKUP, &to_wire(&table.to_owned()))?)?;
        self.lock_catalog().insert(table.to_owned(), meta);
        Ok(meta)
    }

    fn lock_catalog(&self) -> std::sync::MutexGuard<'_, HashMap<String, TableMeta>> {
        self.catalog.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Issues a data-plane unary read, charging the data-op counters.
    fn data_op(&self, slot: usize, kind: u8, payload: &[u8]) -> Result<Vec<u8>, KvError> {
        NetCounters::add(&self.metrics.remote_ops, 1);
        NetCounters::add(&self.metrics.bytes_marshalled, payload.len() as u64);
        self.unary(slot, kind, payload)
    }

    /// Issues a data-plane unary write, replicated across `slot`'s group.
    fn data_write(&self, slot: usize, kind: u8, payload: &[u8]) -> Result<Vec<u8>, KvError> {
        NetCounters::add(&self.metrics.remote_ops, 1);
        NetCounters::add(&self.metrics.bytes_marshalled, payload.len() as u64);
        self.replicated_write(slot, kind, payload)
    }

    /// Consumes a scan/drain stream.  Pairs are fed to `each` until it
    /// returns `Stop`; the unconsumed remainder (rest of the stream) is
    /// collected and returned so drains can restore it.
    fn pull_stream(
        &self,
        pending: &Pending,
        each: &mut dyn FnMut(RoutedKey, Bytes) -> ScanControl,
    ) -> Result<Vec<(RoutedKey, Bytes)>, KvError> {
        let mut stopped = false;
        let mut leftover = Vec::new();
        loop {
            let frame = pending.recv()?;
            match frame.kind {
                proto::RESP_CHUNK => {
                    NetCounters::add(&self.metrics.bytes_marshalled, frame.payload.len() as u64);
                    for (k, v) in proto::decode_pairs(&frame.payload)? {
                        if stopped {
                            leftover.push((k, v));
                        } else if !each(k, v).should_continue() {
                            stopped = true;
                        }
                    }
                }
                _ => return Ok(leftover), // RESP_END
            }
        }
    }
}

/// A [`KvStore`] backed by TCP part servers.
///
/// Cheap to clone; clones share the connection pool, catalog, and
/// counters.
#[derive(Debug, Clone)]
pub struct NetStore {
    inner: Arc<Shared>,
}

impl NetStore {
    /// Creates a store speaking to `addrs`, one address per part server
    /// (no replication).  Connections open lazily on first use.
    ///
    /// # Panics
    ///
    /// Panics if `addrs` is empty.
    #[must_use]
    pub fn connect(addrs: Vec<SocketAddr>) -> Self {
        Self::connect_with(addrs, &NetConfig::default())
    }

    /// Like [`NetStore::connect`], with explicit failure tunables.
    ///
    /// # Panics
    ///
    /// Panics if `addrs` is empty.
    #[must_use]
    pub fn connect_with(addrs: Vec<SocketAddr>, config: &NetConfig) -> Self {
        Self::connect_replicated_with(addrs.into_iter().map(|a| vec![a]).collect(), config)
    }

    /// Creates a store over replica groups: one address list per part
    /// slot, the first member of each being the initial primary.
    /// Single-member groups behave exactly like [`NetStore::connect`];
    /// larger groups get replicated writes, epoch-fenced failover, and
    /// (if configured) heartbeat-based failure detection.
    ///
    /// # Panics
    ///
    /// Panics if `groups` or any group is empty.
    #[must_use]
    pub fn connect_replicated(groups: Vec<Vec<SocketAddr>>) -> Self {
        Self::connect_replicated_with(groups, &NetConfig::default())
    }

    /// Like [`NetStore::connect_replicated`], with explicit failure
    /// tunables.
    ///
    /// # Panics
    ///
    /// Panics if `groups` or any group is empty.
    #[must_use]
    pub fn connect_replicated_with(groups: Vec<Vec<SocketAddr>>, config: &NetConfig) -> Self {
        assert!(!groups.is_empty(), "a NetStore needs at least one server");
        let metrics = Arc::new(NetCounters::default());
        let membership = Arc::new(Membership::new(groups, Arc::clone(&metrics)));
        let store = Self {
            inner: Arc::new(Shared {
                pool: Pool::new(
                    Arc::clone(&membership),
                    Arc::clone(&metrics),
                    config.connect_timeout,
                    config.response_timeout,
                ),
                metrics,
                catalog: Mutex::new(HashMap::new()),
                ddl: Mutex::new(()),
            }),
        };
        if let Some(interval) = config.heartbeat_interval {
            spawn_heartbeat(
                Arc::downgrade(&store.inner),
                interval,
                config.heartbeat_grace,
            );
        }
        store
    }

    /// Number of part slots this store speaks to.
    #[must_use]
    pub fn servers(&self) -> usize {
        self.inner.servers()
    }

    /// A snapshot of the client's replica-group membership view.
    #[must_use]
    pub fn membership(&self) -> MembershipView<SocketAddr> {
        self.inner.membership().view()
    }

    /// Administratively advances `slot`'s fencing epoch and returns the
    /// new value.  Connections handshaken at the old epoch are refused by
    /// servers as soon as any connection announces the new one — the hook
    /// zombie-fencing tests use to simulate an external promotion.
    #[must_use]
    pub fn advance_epoch(&self, slot: usize) -> u64 {
        let epoch = self.inner.membership().advance_epoch(slot);
        // This client's own connections are fenced at the old epoch too;
        // sever them so the next request re-handshakes at the new one and
        // raises the server-side watermark.
        self.inner.pool.sever();
        epoch
    }

    /// Severs every open connection at the socket level, failing in-flight
    /// requests with [`KvError::Transient`].  Subsequent requests
    /// reconnect.  A fault-injection hook for testing retry behaviour.
    pub fn sever_connections(&self) {
        self.inner.pool.sever();
    }

    fn table_from_meta(&self, name: &str, meta: TableMeta) -> NetTable {
        self.inner.lock_catalog().insert(name.to_owned(), meta);
        NetTable {
            store: Arc::clone(&self.inner),
            name: name.to_owned(),
            meta,
        }
    }
}

/// Background failure detector: pings the primary of every replicated
/// slot each `interval`; `grace` consecutive misses depose it.  The
/// thread holds only a weak reference and exits once the store is gone.
fn spawn_heartbeat(shared: Weak<Shared>, interval: Duration, grace: u32) {
    let _ = std::thread::Builder::new()
        .name("net-store-heartbeat".to_owned())
        .spawn(move || loop {
            std::thread::sleep(interval);
            let Some(shared) = shared.upgrade() else {
                return;
            };
            let membership = Arc::clone(shared.membership());
            for slot in 0..membership.slots() {
                if !membership.replicated(slot) {
                    continue;
                }
                match shared.unary(slot, proto::REQ_PING, &to_wire(&())) {
                    Ok(payload) => {
                        if let Ok(epoch) = from_wire::<u64>(&payload) {
                            membership.observe_epoch(slot, epoch);
                        }
                    }
                    Err(_) => {
                        membership.record_heartbeat_miss(slot, grace);
                    }
                }
            }
        });
}

/// Handle to a table hosted on part servers.
#[derive(Debug, Clone)]
pub struct NetTable {
    store: Arc<Shared>,
    name: String,
    meta: TableMeta,
}

impl NetTable {
    /// The slot that owns `key` (slot 0 for ubiquitous tables).
    fn server_for(&self, key: &RoutedKey) -> usize {
        if self.meta.ubiquitous {
            0
        } else {
            self.store.owner(key.part_for(self.meta.parts).0)
        }
    }
}

impl Table for NetTable {
    fn name(&self) -> &str {
        &self.name
    }

    fn part_count(&self) -> u32 {
        self.meta.parts
    }

    fn is_ubiquitous(&self) -> bool {
        self.meta.ubiquitous
    }

    fn partitioning_id(&self) -> u64 {
        self.meta.partitioning_id
    }

    fn get(&self, key: &RoutedKey) -> Result<Option<Bytes>, KvError> {
        let payload = to_wire(&(self.name.clone(), key.clone()));
        let resp = self
            .store
            .data_op(self.server_for(key), proto::REQ_GET, &payload)?;
        decode(&resp)
    }

    fn put(&self, key: RoutedKey, value: Bytes) -> Result<Option<Bytes>, KvError> {
        let server = self.server_for(&key);
        let payload = to_wire(&(self.name.clone(), key, value));
        let resp = if self.meta.ubiquitous {
            NetCounters::add(&self.store.metrics.remote_ops, 1);
            NetCounters::add(&self.store.metrics.bytes_marshalled, payload.len() as u64);
            self.store.broadcast(proto::REQ_PUT, &payload)?
        } else {
            self.store.data_write(server, proto::REQ_PUT, &payload)?
        };
        decode(&resp)
    }

    fn delete(&self, key: &RoutedKey) -> Result<bool, KvError> {
        let server = self.server_for(key);
        let payload = to_wire(&(self.name.clone(), key.clone()));
        let resp = if self.meta.ubiquitous {
            NetCounters::add(&self.store.metrics.remote_ops, 1);
            NetCounters::add(&self.store.metrics.bytes_marshalled, payload.len() as u64);
            self.store.broadcast(proto::REQ_DELETE, &payload)?
        } else {
            self.store.data_write(server, proto::REQ_DELETE, &payload)?
        };
        decode(&resp)
    }

    fn len(&self) -> Result<usize, KvError> {
        let payload = to_wire(&self.name);
        if self.meta.ubiquitous {
            let n: u64 = decode(&self.store.unary(0, proto::REQ_LEN, &payload)?)?;
            return Ok(usize::try_from(n).unwrap_or(usize::MAX));
        }
        // Each slot holds only the parts it owns, so the per-slot totals
        // sum to the table size.
        let mut total = 0u64;
        for server in 0..self.store.servers() {
            let n: u64 = decode(&self.store.unary(server, proto::REQ_LEN, &payload)?)?;
            total += n;
        }
        Ok(usize::try_from(total).unwrap_or(usize::MAX))
    }

    fn clear(&self) -> Result<(), KvError> {
        self.store
            .broadcast(proto::REQ_CLEAR, &to_wire(&self.name))?;
        Ok(())
    }
}

impl KvStore for NetStore {
    type Table = NetTable;

    fn create_table(&self, spec: &TableSpec) -> Result<NetTable, KvError> {
        let _ddl = self
            .inner
            .ddl
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        let payload = to_wire(&(
            spec.name().to_owned(),
            spec.part_count(),
            spec.is_ubiquitous(),
            spec.is_replicated(),
        ));
        let meta = TableMeta::decode(&self.inner.broadcast(proto::REQ_CREATE_TABLE, &payload)?)?;
        Ok(self.table_from_meta(spec.name(), meta))
    }

    fn create_table_like(&self, name: &str, like: &NetTable) -> Result<NetTable, KvError> {
        let _ddl = self
            .inner
            .ddl
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        let payload = to_wire(&(name.to_owned(), like.name.clone()));
        let meta = TableMeta::decode(&self.inner.broadcast(proto::REQ_CREATE_LIKE, &payload)?)?;
        Ok(self.table_from_meta(name, meta))
    }

    fn create_table_like_replicated(
        &self,
        name: &str,
        like: &NetTable,
    ) -> Result<NetTable, KvError> {
        let _ddl = self
            .inner
            .ddl
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        let payload = to_wire(&(name.to_owned(), like.name.clone()));
        let meta = TableMeta::decode(
            &self
                .inner
                .broadcast(proto::REQ_CREATE_LIKE_REPLICATED, &payload)?,
        )?;
        Ok(self.table_from_meta(name, meta))
    }

    fn lookup_table(&self, name: &str) -> Result<NetTable, KvError> {
        let meta = TableMeta::decode(&self.inner.unary(
            0,
            proto::REQ_LOOKUP,
            &to_wire(&name.to_owned()),
        )?)?;
        Ok(self.table_from_meta(name, meta))
    }

    fn drop_table(&self, name: &str) -> Result<(), KvError> {
        let _ddl = self
            .inner
            .ddl
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        self.inner
            .broadcast(proto::REQ_DROP, &to_wire(&name.to_owned()))?;
        self.inner.lock_catalog().remove(name);
        Ok(())
    }

    fn table_names(&self) -> Vec<String> {
        self.inner
            .unary(0, proto::REQ_TABLE_NAMES, &to_wire(&()))
            .ok()
            .and_then(|resp| decode(&resp).ok())
            .unwrap_or_default()
    }

    fn run_at<R, F>(&self, reference: &NetTable, part: PartId, task: F) -> TaskHandle<R>
    where
        R: Send + 'static,
        F: FnOnce(&dyn PartView) -> R + Send + 'static,
    {
        assert!(
            part.0 < reference.part_count(),
            "part {part} out of range for table {:?} with {} parts",
            reference.name(),
            reference.part_count()
        );
        NetCounters::add(&self.inner.metrics.tasks, 1);
        let view = RemotePartView {
            shared: Arc::clone(&self.inner),
            part,
            partitioning_id: reference.meta.partitioning_id,
            reference_name: reference.name.clone(),
        };
        let (tx, rx) = bounded(1);
        std::thread::Builder::new()
            .name(format!("net-store-task-p{}", part.0))
            .spawn(move || {
                let result = std::panic::catch_unwind(AssertUnwindSafe(|| task(&view)));
                let _ = tx.send(result);
            })
            .expect("spawn task thread");
        TaskHandle::from_channel(part, rx)
    }

    fn run_named_at(
        &self,
        reference: &NetTable,
        part: PartId,
        task: &str,
        arg: Bytes,
    ) -> TaskHandle<Result<Bytes, KvError>> {
        assert!(
            part.0 < reference.part_count(),
            "part {part} out of range for table {:?} with {} parts",
            reference.name(),
            reference.part_count()
        );
        NetCounters::add(&self.inner.metrics.tasks, 1);
        let shared = Arc::clone(&self.inner);
        let server = if reference.meta.ubiquitous {
            0
        } else {
            shared.owner(part.0)
        };
        let payload = to_wire(&(reference.name.clone(), part.0, task.to_owned(), arg));
        let (tx, rx) = bounded(1);
        std::thread::Builder::new()
            .name(format!("net-store-named-p{}", part.0))
            .spawn(move || {
                let result = shared
                    .unary(server, proto::REQ_RUN_TASK, &payload)
                    .map(Bytes::from);
                let _ = tx.send(Ok(result));
            })
            .expect("spawn named-task thread");
        TaskHandle::from_channel(part, rx)
    }

    fn metrics(&self) -> StoreMetrics {
        self.inner.metrics.snapshot()
    }

    fn set_event_sink(&self, sink: Arc<dyn StoreEventSink>) {
        self.inner.membership().set_sink(sink);
    }

    fn set_op_deadline(&self, deadline: Option<Duration>) {
        self.inner.pool.set_deadline(deadline);
    }

    fn ping_part(&self, part: PartId) -> Result<u64, KvError> {
        let slot = self.inner.owner(part.0);
        let payload = self.inner.unary(slot, proto::REQ_PING, &to_wire(&()))?;
        let epoch: u64 = decode(&payload)?;
        self.inner.membership().observe_epoch(slot, epoch);
        Ok(epoch)
    }
}

/// The client-side [`PartView`] handed to `run_at` closures: every
/// operation ships data over the wire to the owning server, mirroring the
/// semantics of a local view (part-scoped enumeration, unscoped point
/// lookups, the ubiquity and co-partitioning checks).
struct RemotePartView {
    shared: Arc<Shared>,
    part: PartId,
    partitioning_id: u64,
    reference_name: String,
}

impl RemotePartView {
    fn resolve(&self, table: &str, write: bool) -> Result<TableMeta, KvError> {
        let meta = self.shared.meta_for(table)?;
        if meta.ubiquitous {
            if write {
                return Err(KvError::UbiquityMismatch {
                    name: table.to_owned(),
                });
            }
            return Ok(meta);
        }
        if meta.partitioning_id != self.partitioning_id {
            return Err(KvError::NotCopartitioned {
                left: table.to_owned(),
                right: self.reference_name.clone(),
            });
        }
        Ok(meta)
    }

    fn server_for(&self, meta: TableMeta, key: &RoutedKey) -> usize {
        if meta.ubiquitous {
            0
        } else {
            self.shared.owner(key.part_for(meta.parts).0)
        }
    }

    /// The `(slot, part)` a part-scoped enumeration addresses: the
    /// anchored part's owner, or part 0 on slot 0 for ubiquitous tables
    /// (whose every replica holds the full contents).
    fn scan_target(&self, meta: TableMeta) -> (usize, u32) {
        if meta.ubiquitous {
            (0, 0)
        } else {
            (self.shared.owner(self.part.0), self.part.0)
        }
    }
}

impl PartView for RemotePartView {
    fn part(&self) -> PartId {
        self.part
    }

    fn get(&self, table: &str, key: &RoutedKey) -> Result<Option<Bytes>, KvError> {
        let meta = self.resolve(table, false)?;
        let payload = to_wire(&(table.to_owned(), key.clone()));
        let resp = self
            .shared
            .data_op(self.server_for(meta, key), proto::REQ_GET, &payload)?;
        decode(&resp)
    }

    fn put(&self, table: &str, key: RoutedKey, value: Bytes) -> Result<Option<Bytes>, KvError> {
        let meta = self.resolve(table, true)?;
        let server = self.server_for(meta, &key);
        let payload = to_wire(&(table.to_owned(), key, value));
        let resp = self.shared.data_write(server, proto::REQ_PUT, &payload)?;
        decode(&resp)
    }

    fn delete(&self, table: &str, key: &RoutedKey) -> Result<bool, KvError> {
        let meta = self.resolve(table, true)?;
        let payload = to_wire(&(table.to_owned(), key.clone()));
        let resp =
            self.shared
                .data_write(self.server_for(meta, key), proto::REQ_DELETE, &payload)?;
        decode(&resp)
    }

    fn scan(
        &self,
        table: &str,
        f: &mut dyn FnMut(&RoutedKey, &[u8]) -> ScanControl,
    ) -> Result<(), KvError> {
        let meta = self.resolve(table, false)?;
        NetCounters::add(&self.shared.metrics.enumerations, 1);
        let (server, part) = self.scan_target(meta);
        let payload = to_wire(&(table.to_owned(), part));
        let pending = self
            .shared
            .pool
            .request(server, proto::REQ_SCAN, &payload)?;
        self.shared
            .pull_stream(&pending, &mut |k, v| f(&k, &v))
            .map(|_| ())
    }

    fn drain(
        &self,
        table: &str,
        f: &mut dyn FnMut(RoutedKey, Bytes) -> ScanControl,
    ) -> Result<(), KvError> {
        let meta = self.resolve(table, true)?;
        NetCounters::add(&self.shared.metrics.enumerations, 1);
        let (server, part) = self.scan_target(meta);
        let payload = to_wire(&(table.to_owned(), part));
        // Enumerate non-destructively and buffer the whole stream first:
        // nothing is removed server-side until the stream has arrived
        // intact, so a connection lost mid-drain loses no data — the
        // caller sees a transient error and the retried drain starts
        // clean.  (The destructive `REQ_DRAIN` would drop the part's
        // pairs on the floor if the stream died under it.)
        let pending = self
            .shared
            .pool
            .request(server, proto::REQ_SCAN, &payload)?;
        let mut pairs: Vec<(RoutedKey, Bytes)> = Vec::new();
        self.shared.pull_stream(&pending, &mut |k, v| {
            pairs.push((k, v));
            ScanControl::Continue
        })?;
        // Feed the visitor, then delete exactly what it consumed; an
        // early stop leaves the remainder in place, matching local
        // early-stop semantics.  Engine phases are barriered, so nothing
        // writes the table between the enumeration and the deletes.
        let mut ops: Vec<(u8, RoutedKey, Bytes)> = Vec::new();
        for (k, v) in pairs {
            let key = k.clone();
            let control = f(k, v);
            ops.push((proto::APPLY_DELETE, key, Bytes::new()));
            if !control.should_continue() {
                break;
            }
        }
        if !ops.is_empty() {
            let count = ops.len() as u64;
            NetCounters::add(&self.shared.metrics.remote_ops, count);
            let payload = to_wire(&(table.to_owned(), ops));
            NetCounters::add(&self.shared.metrics.bytes_marshalled, payload.len() as u64);
            self.shared
                .replicated_write(server, proto::REQ_APPLY, &payload)?;
        }
        Ok(())
    }

    fn len(&self, table: &str) -> Result<usize, KvError> {
        let meta = self.resolve(table, false)?;
        let (server, part) = self.scan_target(meta);
        let payload = to_wire(&(table.to_owned(), part));
        let n: u64 = decode(&self.shared.unary(server, proto::REQ_PART_LEN, &payload)?)?;
        Ok(usize::try_from(n).unwrap_or(usize::MAX))
    }
}
