//! `ripple-store-net`: the networked store backend.
//!
//! This crate turns the platform's storage+compute layer into a
//! client/server system: [`PartServer`] hosts the parts of any inner
//! [`KvStore`](ripple_kv::KvStore) (memory or disk) behind a TCP
//! protocol, and [`NetStore`] implements the same `KvStore` SPI on the
//! client side, so every engine, job, loader, and exporter in the
//! workspace runs unchanged against remote data.
//!
//! The architecture follows the paper's part-server model (§III):
//!
//! - **Tables are partitioned across servers** — part `p` lives on server
//!   `p % servers`; co-partitioned tables (created `like` one another)
//!   collocate equal-routed keys on the same server.
//! - **Ubiquitous tables are replicated everywhere** — writes broadcast,
//!   reads stay local to whichever server needs them.
//! - **Computation moves to data** — registered tasks dispatch by name
//!   via [`KvStore::run_named_at`](ripple_kv::KvStore::run_named_at) and
//!   run inside the owning server; ad-hoc closures
//!   ([`run_at`](ripple_kv::KvStore::run_at)) run on the client against a
//!   data-shipping remote view.
//!
//! The protocol (see [`proto`]) is request-pipelined: one pooled
//! connection per server carries any number of in-flight requests, with
//! responses matched by id, streamed enumeration chunks, and CRC-checked
//! frames.  Transient socket failures surface as
//! [`KvError::Transient`](ripple_kv::KvError::Transient), which the
//! engine's retry policy already knows how to heal.
//!
//! # Examples
//!
//! ```
//! use bytes::Bytes;
//! use ripple_kv::{KvStore, RoutedKey, Table, TableSpec};
//! use ripple_store_net::LoopbackCluster;
//!
//! let cluster = LoopbackCluster::spawn(2, 4);
//! let t = cluster
//!     .store
//!     .create_table(TableSpec::new("ranks").parts(4))
//!     .unwrap();
//! t.put(RoutedKey::from_body(Bytes::from_static(b"a")), Bytes::from_static(b"1"))
//!     .unwrap();
//! assert_eq!(t.get(&RoutedKey::from_body(Bytes::from_static(b"a"))).unwrap().unwrap(),
//!            Bytes::from_static(b"1"));
//! assert!(cluster.store.metrics().rpcs > 0);
//! ```

pub mod chaos;
mod client;
pub mod dispatch;
mod membership;
mod metrics;
mod pool;
pub mod proto;
mod server;

pub mod loopback;

pub use chaos::{ChaosProxy, Direction, NetFault, NetFaultPlan, NetFaultRecord, PPM_ALWAYS};
pub use client::{NetConfig, NetStore, NetTable};
pub use loopback::{ChaosCluster, LoopbackCluster};
pub use membership::Membership;
pub use metrics::NetCounters;
pub use pool::{Pending, Pool, CONNECT_TIMEOUT, RESPONSE_TIMEOUT};
pub use server::{PartServer, ServerHandle, STOP_GRACE};
