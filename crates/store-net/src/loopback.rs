//! In-process loopback clusters: a [`NetStore`] talking to part servers
//! on `127.0.0.1`, all inside one process.
//!
//! This is the deployment used by tests, benches, and the `--store net`
//! bench flag: every byte still crosses a real TCP socket and the full
//! protocol (framing, CRC, pipelining, batching), so it exercises the
//! networked path without needing more than one machine.

use std::net::{Ipv4Addr, SocketAddr};

use ripple_kv::TaskRegistry;
use ripple_store_mem::MemStore;

use crate::chaos::{ChaosProxy, NetFaultPlan};
use crate::client::{NetConfig, NetStore};
use crate::server::{PartServer, ServerHandle};

fn spawn_server(default_parts: u32, registry: &TaskRegistry) -> ServerHandle {
    let any: SocketAddr = (Ipv4Addr::LOCALHOST, 0).into();
    let inner = MemStore::builder().default_parts(default_parts).build();
    PartServer::new(inner)
        .with_registry(registry.clone())
        .bind(any)
        .expect("bind loopback part server")
}

/// A [`NetStore`] plus the in-process servers backing it.  Dropping the
/// cluster stops the servers.
#[derive(Debug)]
pub struct LoopbackCluster {
    /// The client store; clone it freely.
    pub store: NetStore,
    /// Handles on the running servers (stopped on drop).
    pub handles: Vec<ServerHandle>,
}

impl LoopbackCluster {
    /// Spawns `servers` part servers on ephemeral loopback ports, each
    /// backed by a [`MemStore`] with `default_parts` parts, and connects
    /// a [`NetStore`] to them.
    ///
    /// # Panics
    ///
    /// Panics if a loopback listener cannot be bound.
    #[must_use]
    pub fn spawn(servers: usize, default_parts: u32) -> Self {
        Self::spawn_with_registry(servers, default_parts, &TaskRegistry::default())
    }

    /// Like [`LoopbackCluster::spawn`], with a shared task registry so
    /// callers can register named tasks on every server.
    ///
    /// # Panics
    ///
    /// Panics if a loopback listener cannot be bound.
    #[must_use]
    pub fn spawn_with_registry(
        servers: usize,
        default_parts: u32,
        registry: &TaskRegistry,
    ) -> Self {
        assert!(servers > 0, "a cluster needs at least one server");
        let handles: Vec<ServerHandle> = (0..servers)
            .map(|_| spawn_server(default_parts, registry))
            .collect();
        let addrs = handles.iter().map(ServerHandle::addr).collect();
        Self {
            store: NetStore::connect(addrs),
            handles,
        }
    }

    /// Spawns a replicated cluster: `groups` part slots, each served by
    /// `replicas` servers (one primary plus `replicas - 1` standbys), and
    /// connects a replication-aware [`NetStore`] configured by `config`.
    /// Handles are grouped slot-major: `handles[slot * replicas + r]` is
    /// replica `r` of `slot` (replica 0 is the initial primary).
    ///
    /// # Panics
    ///
    /// Panics if `groups` or `replicas` is zero, or a listener cannot be
    /// bound.
    #[must_use]
    pub fn spawn_replicated(
        groups: usize,
        replicas: usize,
        default_parts: u32,
        config: &NetConfig,
    ) -> Self {
        assert!(groups > 0, "a cluster needs at least one group");
        assert!(replicas > 0, "a group needs at least one replica");
        let registry = TaskRegistry::default();
        let handles: Vec<ServerHandle> = (0..groups * replicas)
            .map(|_| spawn_server(default_parts, &registry))
            .collect();
        let addr_groups: Vec<Vec<SocketAddr>> = (0..groups)
            .map(|g| {
                (0..replicas)
                    .map(|r| handles[g * replicas + r].addr())
                    .collect()
            })
            .collect();
        Self {
            store: NetStore::connect_replicated_with(addr_groups, config),
            handles,
        }
    }
}

/// A loopback cluster whose client traffic passes through one
/// [`ChaosProxy`] per part server, all driven by the same seeded
/// [`NetFaultPlan`].  Dropping the cluster stops proxies and servers.
#[derive(Debug)]
pub struct ChaosCluster {
    /// The client store; its connections go through the proxies.
    pub store: NetStore,
    /// Handles on the running servers (stopped on drop).
    pub handles: Vec<ServerHandle>,
    /// The interposed proxies, for traces and seeds.
    pub proxies: Vec<ChaosProxy>,
}

impl ChaosCluster {
    /// Spawns `servers` part servers, each fronted by a chaos proxy
    /// running `plan`, and connects a [`NetStore`] (configured by
    /// `config`) through the proxies.
    ///
    /// # Panics
    ///
    /// Panics if `servers` is zero or a listener cannot be bound.
    #[must_use]
    pub fn spawn(
        servers: usize,
        default_parts: u32,
        plan: &NetFaultPlan,
        config: &NetConfig,
    ) -> Self {
        assert!(servers > 0, "a cluster needs at least one server");
        let registry = TaskRegistry::default();
        let handles: Vec<ServerHandle> = (0..servers)
            .map(|_| spawn_server(default_parts, &registry))
            .collect();
        let proxies: Vec<ChaosProxy> = handles
            .iter()
            .map(|h| ChaosProxy::spawn(h.addr(), plan.clone()).expect("spawn chaos proxy"))
            .collect();
        let addrs = proxies.iter().map(ChaosProxy::addr).collect();
        Self {
            store: NetStore::connect_with(addrs, config),
            handles,
            proxies,
        }
    }

    /// The faults injected so far across every proxy, flattened in proxy
    /// order (each proxy's slice sorted by `(conn, direction, frame)`).
    #[must_use]
    pub fn trace(&self) -> Vec<crate::chaos::NetFaultRecord> {
        self.proxies.iter().flat_map(ChaosProxy::trace).collect()
    }
}
