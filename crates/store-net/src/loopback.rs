//! In-process loopback clusters: a [`NetStore`] talking to part servers
//! on `127.0.0.1`, all inside one process.
//!
//! This is the deployment used by tests, benches, and the `--store net`
//! bench flag: every byte still crosses a real TCP socket and the full
//! protocol (framing, CRC, pipelining, batching), so it exercises the
//! networked path without needing more than one machine.

use std::net::{Ipv4Addr, SocketAddr};

use ripple_kv::TaskRegistry;
use ripple_store_mem::MemStore;

use crate::client::NetStore;
use crate::server::{PartServer, ServerHandle};

/// A [`NetStore`] plus the in-process servers backing it.  Dropping the
/// cluster stops the servers.
#[derive(Debug)]
pub struct LoopbackCluster {
    /// The client store; clone it freely.
    pub store: NetStore,
    /// Handles on the running servers (stopped on drop).
    pub handles: Vec<ServerHandle>,
}

impl LoopbackCluster {
    /// Spawns `servers` part servers on ephemeral loopback ports, each
    /// backed by a [`MemStore`] with `default_parts` parts, and connects
    /// a [`NetStore`] to them.
    ///
    /// # Panics
    ///
    /// Panics if a loopback listener cannot be bound.
    #[must_use]
    pub fn spawn(servers: usize, default_parts: u32) -> Self {
        Self::spawn_with_registry(servers, default_parts, &TaskRegistry::default())
    }

    /// Like [`LoopbackCluster::spawn`], with a shared task registry so
    /// callers can register named tasks on every server.
    ///
    /// # Panics
    ///
    /// Panics if a loopback listener cannot be bound.
    #[must_use]
    pub fn spawn_with_registry(
        servers: usize,
        default_parts: u32,
        registry: &TaskRegistry,
    ) -> Self {
        assert!(servers > 0, "a cluster needs at least one server");
        let any: SocketAddr = (Ipv4Addr::LOCALHOST, 0).into();
        let handles: Vec<ServerHandle> = (0..servers)
            .map(|_| {
                let inner = MemStore::builder().default_parts(default_parts).build();
                PartServer::new(inner)
                    .with_registry(registry.clone())
                    .bind(any)
                    .expect("bind loopback part server")
            })
            .collect();
        let addrs = handles.iter().map(ServerHandle::addr).collect();
        Self {
            store: NetStore::connect(addrs),
            handles,
        }
    }
}
