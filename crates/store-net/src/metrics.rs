//! Lock-free counters for the networked store.
//!
//! One [`NetCounters`] instance is shared by the connection pool, the
//! client tables, and the store facade; [`NetCounters::snapshot`] folds it
//! into the platform-wide [`StoreMetrics`] shape so step profiles and
//! Chrome traces pick the numbers up without knowing the backend.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use ripple_kv::{LatencyBuckets, StoreMetrics};

/// Atomic counter block for one [`NetStore`](crate::NetStore).
#[derive(Debug, Default)]
pub struct NetCounters {
    /// Request/response round trips issued (unary requests and streams
    /// each count once).
    pub rpcs: AtomicU64,
    /// Frame bytes received from part servers, including frame overhead.
    pub bytes_in: AtomicU64,
    /// Frame bytes sent to part servers, including frame overhead.
    pub bytes_out: AtomicU64,
    /// Data-plane operations (get/put/delete/apply entries).
    pub remote_ops: AtomicU64,
    /// Payload bytes marshalled for data-plane requests and streamed
    /// responses.
    pub bytes_marshalled: AtomicU64,
    /// Tasks shipped via `run_at` / `run_named_at`.
    pub tasks: AtomicU64,
    /// Part enumerations (scan/drain streams opened).
    pub enumerations: AtomicU64,
    /// Operations re-issued inside the store (fencing handshake redone
    /// after observing a newer epoch, replicated writes retried on a fresh
    /// connection).
    pub retries: AtomicU64,
    /// Frame bytes re-sent because of a retry: stale-epoch re-issues,
    /// fencing handshake redos, standby write retries, and reconnect
    /// handshakes.  A subset of `bytes_out`, tracked separately so cost
    /// accounting can subtract wasted traffic from the useful h-relation.
    pub retry_bytes: AtomicU64,
    /// Connections established beyond a destination's first — every
    /// reconnect after a severed or poisoned connection.
    pub reconnects: AtomicU64,
    /// Primary promotions: a standby took over a part slot at a higher
    /// epoch.
    pub failovers: AtomicU64,
    lat: [AtomicU64; LatencyBuckets::BUCKETS],
}

impl NetCounters {
    /// Records one request latency measured from `start`.
    pub fn observe_latency(&self, start: Instant) {
        let us = u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX);
        self.lat[LatencyBuckets::bucket_for(us)].fetch_add(1, Ordering::Relaxed);
    }

    /// Folds the counters into the platform metrics shape.
    pub fn snapshot(&self) -> StoreMetrics {
        let mut rpc_latency = LatencyBuckets::default();
        for (slot, bucket) in self.lat.iter().zip(rpc_latency.0.iter_mut()) {
            *bucket = slot.load(Ordering::Relaxed);
        }
        StoreMetrics {
            remote_ops: self.remote_ops.load(Ordering::Relaxed),
            bytes_marshalled: self.bytes_marshalled.load(Ordering::Relaxed),
            tasks_dispatched: self.tasks.load(Ordering::Relaxed),
            enumerations: self.enumerations.load(Ordering::Relaxed),
            rpcs: self.rpcs.load(Ordering::Relaxed),
            net_bytes_in: self.bytes_in.load(Ordering::Relaxed),
            net_bytes_out: self.bytes_out.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
            retry_bytes: self.retry_bytes.load(Ordering::Relaxed),
            reconnects: self.reconnects.load(Ordering::Relaxed),
            failovers: self.failovers.load(Ordering::Relaxed),
            rpc_latency,
            ..StoreMetrics::default()
        }
    }

    /// Convenience: `fetch_add` with relaxed ordering.
    pub fn add(counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reflects_counters() {
        let c = NetCounters::default();
        NetCounters::add(&c.rpcs, 3);
        NetCounters::add(&c.bytes_in, 100);
        NetCounters::add(&c.bytes_out, 200);
        NetCounters::add(&c.remote_ops, 5);
        NetCounters::add(&c.retries, 2);
        NetCounters::add(&c.retry_bytes, 64);
        NetCounters::add(&c.reconnects, 4);
        NetCounters::add(&c.failovers, 1);
        c.observe_latency(Instant::now());
        let m = c.snapshot();
        assert_eq!(m.rpcs, 3);
        assert_eq!(m.net_bytes_in, 100);
        assert_eq!(m.net_bytes_out, 200);
        assert_eq!(m.remote_ops, 5);
        assert_eq!(m.retries, 2);
        assert_eq!(m.retry_bytes, 64);
        assert_eq!(m.reconnects, 4);
        assert_eq!(m.failovers, 1);
        assert_eq!(m.rpc_latency.total(), 1);
        assert_eq!(m.local_ops, 0);
    }
}
