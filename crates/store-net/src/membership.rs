//! Client-side replica-group membership: who is primary for each part
//! slot, at which fencing epoch, and when to give up on a member.
//!
//! The networked store assigns part `p` to slot `p % groups`; each slot is
//! served by a replica group (primary + standbys).  This module tracks the
//! client's view of every group and implements the promotion rules:
//!
//! - **connect refusal or failed handshake** to a fresh connection is
//!   treated as hard evidence the member is gone
//!   ([`Membership::member_unreachable`]) — the member is marked down and,
//!   if it was the primary, a standby is promoted immediately;
//! - **an established connection dying** is softer evidence (a single
//!   sever may be transient), so it only raises a suspicion counter
//!   ([`Membership::record_failure`]); the primary is deposed after
//!   [`SUSPICION_THRESHOLD`] strikes without an intervening success;
//! - **missed heartbeats** accumulate the same way via
//!   [`Membership::record_heartbeat_miss`], with the grace threshold
//!   supplied by the failure detector.
//!
//! Every promotion advances the group's **fencing epoch** by one and is
//! reported through the installed [`StoreEventSink`] and the `failovers`
//! counter.  Single-member groups are exempt from all of this: with no
//! standby to promote, marking the lone member down would only turn a
//! transient fault into a permanent one, so unreplicated deployments keep
//! the plain sever-and-reconnect behaviour.

use std::net::SocketAddr;
use std::sync::{Arc, Mutex, PoisonError};

use ripple_kv::{MembershipView, ReplicaSet, StoreEventSink};

use crate::metrics::NetCounters;

/// Established-connection failures tolerated against a primary before a
/// standby is promoted.
pub const SUSPICION_THRESHOLD: u32 = 2;

/// One slot's mutable group state.
#[derive(Debug)]
struct GroupCore {
    primary: usize,
    epoch: u64,
    down: Vec<bool>,
    /// Established-connection failures against the current primary since
    /// its last success.
    suspicion: u32,
    /// Consecutive heartbeat misses against the current primary.
    hb_misses: u32,
}

#[derive(Debug)]
struct GroupState {
    members: Vec<SocketAddr>,
    core: Mutex<GroupCore>,
}

impl GroupState {
    fn lock(&self) -> std::sync::MutexGuard<'_, GroupCore> {
        self.core.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// The client's membership view over every part slot, shared by the
/// connection pool, the store facade, and the failure detector.
pub struct Membership {
    groups: Vec<GroupState>,
    metrics: Arc<NetCounters>,
    sink: Mutex<Option<Arc<dyn StoreEventSink>>>,
}

impl std::fmt::Debug for Membership {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Membership")
            .field("groups", &self.groups)
            .finish_non_exhaustive()
    }
}

impl Membership {
    /// Builds the membership over `groups`, one address list per part
    /// slot; the first member of each group is the initial primary and
    /// every group starts at epoch 1.
    ///
    /// # Panics
    ///
    /// Panics if `groups` is empty or any group is empty.
    pub fn new(groups: Vec<Vec<SocketAddr>>, metrics: Arc<NetCounters>) -> Self {
        assert!(!groups.is_empty(), "membership needs at least one group");
        let groups = groups
            .into_iter()
            .map(|members| {
                assert!(!members.is_empty(), "a replica group cannot be empty");
                let n = members.len();
                GroupState {
                    members,
                    core: Mutex::new(GroupCore {
                        primary: 0,
                        epoch: 1,
                        down: vec![false; n],
                        suspicion: 0,
                        hb_misses: 0,
                    }),
                }
            })
            .collect();
        Self {
            groups,
            metrics,
            sink: Mutex::new(None),
        }
    }

    /// Number of part slots (replica groups).
    pub fn slots(&self) -> usize {
        self.groups.len()
    }

    /// Number of members in `slot`'s group.
    pub fn group_size(&self, slot: usize) -> usize {
        self.groups[slot].members.len()
    }

    /// Whether `slot` has standbys (and therefore participates in epoch
    /// fencing and promotion).
    pub fn replicated(&self, slot: usize) -> bool {
        self.group_size(slot) > 1
    }

    /// The address of member `member` of `slot`'s group.
    pub fn member_addr(&self, slot: usize, member: usize) -> SocketAddr {
        self.groups[slot].members[member]
    }

    /// The current primary of `slot`: `(member index, address, epoch)`.
    pub fn primary(&self, slot: usize) -> (usize, SocketAddr, u64) {
        let g = &self.groups[slot];
        let core = g.lock();
        (core.primary, g.members[core.primary], core.epoch)
    }

    /// The fencing epoch of `slot`'s group.
    pub fn epoch(&self, slot: usize) -> u64 {
        self.groups[slot].lock().epoch
    }

    /// Member indices of `slot`'s live standbys (everyone but the primary
    /// that is not marked down).
    pub fn live_standbys(&self, slot: usize) -> Vec<usize> {
        let core = self.groups[slot].lock();
        (0..self.groups[slot].members.len())
            .filter(|&m| m != core.primary && !core.down[m])
            .collect()
    }

    /// Installs (or replaces) the sink that receives part-down and
    /// failover events.
    pub fn set_sink(&self, sink: Arc<dyn StoreEventSink>) {
        *self.sink.lock().unwrap_or_else(PoisonError::into_inner) = Some(sink);
    }

    fn notify(&self, f: impl FnOnce(&dyn StoreEventSink)) {
        let sink = self
            .sink
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone();
        if let Some(sink) = sink {
            f(sink.as_ref());
        }
    }

    /// Raises the local epoch of `slot` to at least `seen` — called when a
    /// server response proves a newer fence exists (stale-epoch refusal,
    /// or a handshake/ping echoing a higher epoch).
    pub fn observe_epoch(&self, slot: usize, seen: u64) {
        let mut core = self.groups[slot].lock();
        if seen > core.epoch {
            core.epoch = seen;
        }
    }

    /// Advances `slot`'s epoch by one without changing the primary and
    /// returns the new epoch.  An administrative fence: connections
    /// handshaken at the old epoch are refused by servers once any
    /// connection announces the new one.  Exists for tests and tooling.
    pub fn advance_epoch(&self, slot: usize) -> u64 {
        let mut core = self.groups[slot].lock();
        core.epoch += 1;
        core.epoch
    }

    /// Hard evidence member `member` of `slot` is gone (connect refused,
    /// or a fresh connection failed its handshake): marks it down and, if
    /// it was the primary, promotes a standby immediately.  No-op for
    /// single-member groups.  Returns `true` if a promotion happened.
    pub fn member_unreachable(&self, slot: usize, member: usize) -> bool {
        if !self.replicated(slot) {
            return false;
        }
        let g = &self.groups[slot];
        let mut core = g.lock();
        self.mark_down_locked(slot, &mut core, member);
        if core.primary == member {
            return self.promote_locked(slot, &mut core);
        }
        false
    }

    /// Soft evidence against `member` of `slot`: an established connection
    /// died under a request.  Counts one strike against a primary (the
    /// caller must rate-limit to one call per connection); at
    /// [`SUSPICION_THRESHOLD`] strikes the primary is deposed.  Standbys
    /// get no strikes here — the replicated-write path retries and marks
    /// them down itself.  No-op for single-member groups.  Returns `true`
    /// if a promotion happened.
    pub fn record_failure(&self, slot: usize, member: usize) -> bool {
        if !self.replicated(slot) {
            return false;
        }
        let mut core = self.groups[slot].lock();
        if core.primary != member {
            return false;
        }
        core.suspicion += 1;
        if core.suspicion >= SUSPICION_THRESHOLD {
            let deposed = core.primary;
            self.mark_down_locked(slot, &mut core, deposed);
            return self.promote_locked(slot, &mut core);
        }
        false
    }

    /// A request against `member` of `slot` completed: clears the
    /// suspicion and heartbeat-miss counters if it is the current primary.
    pub fn record_success(&self, slot: usize, member: usize) {
        let mut core = self.groups[slot].lock();
        if core.primary == member {
            core.suspicion = 0;
            core.hb_misses = 0;
        }
    }

    /// A heartbeat against the primary of `slot` went unanswered; after
    /// `grace` consecutive misses the primary is deposed.  No-op for
    /// single-member groups.  Returns `true` if a promotion happened.
    pub fn record_heartbeat_miss(&self, slot: usize, grace: u32) -> bool {
        if !self.replicated(slot) {
            return false;
        }
        let mut core = self.groups[slot].lock();
        core.hb_misses += 1;
        if core.hb_misses >= grace {
            let deposed = core.primary;
            self.mark_down_locked(slot, &mut core, deposed);
            return self.promote_locked(slot, &mut core);
        }
        false
    }

    /// Permanently removes a standby from `slot`'s write set (a
    /// replicated write failed twice against it).  No-op for single-member
    /// groups or when `member` is the current primary.
    pub fn mark_standby_down(&self, slot: usize, member: usize) {
        if !self.replicated(slot) {
            return;
        }
        let mut core = self.groups[slot].lock();
        if core.primary == member {
            return;
        }
        self.mark_down_locked(slot, &mut core, member);
    }

    fn mark_down_locked(&self, slot: usize, core: &mut GroupCore, member: usize) {
        if !core.down[member] {
            core.down[member] = true;
            let epoch = core.epoch;
            self.notify(|s| s.on_part_down(slot_part(slot), epoch));
        }
    }

    /// Promotes the next live standby of `slot`.  Returns `false` (leaving
    /// the deposed primary in place, still down) when no live standby
    /// remains — the group is lost and requests keep failing transiently.
    fn promote_locked(&self, slot: usize, core: &mut GroupCore) -> bool {
        let n = core.down.len();
        let Some(next) = (1..n)
            .map(|step| (core.primary + step) % n)
            .find(|&m| !core.down[m])
        else {
            return false;
        };
        core.primary = next;
        core.epoch += 1;
        core.suspicion = 0;
        core.hb_misses = 0;
        let epoch = core.epoch;
        NetCounters::add(&self.metrics.failovers, 1);
        self.notify(|s| s.on_failover(slot_part(slot), epoch));
        true
    }

    /// A snapshot of every group for callers outside the store.
    pub fn view(&self) -> MembershipView<SocketAddr> {
        MembershipView {
            groups: self
                .groups
                .iter()
                .map(|g| {
                    let core = g.lock();
                    ReplicaSet {
                        members: g.members.clone(),
                        primary: core.primary,
                        epoch: core.epoch,
                        down: core.down.clone(),
                    }
                })
                .collect(),
        }
    }
}

/// The representative part number for a slot in failure events: the
/// lowest part id the slot serves (`part % slots == slot` ⇒ part `slot`
/// itself).
fn slot_part(slot: usize) -> u32 {
    u32::try_from(slot).unwrap_or(u32::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn addr(port: u16) -> SocketAddr {
        (std::net::Ipv4Addr::LOCALHOST, port).into()
    }

    fn replicated3() -> Membership {
        Membership::new(
            vec![vec![addr(1), addr(2), addr(3)]],
            Arc::new(NetCounters::default()),
        )
    }

    #[test]
    fn unreachable_primary_promotes_immediately() {
        let m = replicated3();
        assert_eq!(m.primary(0), (0, addr(1), 1));
        assert!(m.member_unreachable(0, 0));
        assert_eq!(m.primary(0), (1, addr(2), 2));
        // A standby going unreachable marks it down without promotion.
        assert!(!m.member_unreachable(0, 2));
        assert_eq!(m.primary(0), (1, addr(2), 2));
        assert_eq!(m.live_standbys(0), Vec::<usize>::new());
    }

    #[test]
    fn suspicion_needs_two_strikes_and_resets_on_success() {
        let m = replicated3();
        assert!(!m.record_failure(0, 0));
        m.record_success(0, 0);
        assert!(!m.record_failure(0, 0), "success reset the first strike");
        assert!(m.record_failure(0, 0));
        assert_eq!(m.primary(0).0, 1);
    }

    #[test]
    fn heartbeat_misses_depose_at_grace() {
        let m = replicated3();
        assert!(!m.record_heartbeat_miss(0, 3));
        assert!(!m.record_heartbeat_miss(0, 3));
        assert!(m.record_heartbeat_miss(0, 3));
        assert_eq!(m.primary(0), (1, addr(2), 2));
    }

    #[test]
    fn single_member_groups_never_promote_or_mark_down() {
        let m = Membership::new(vec![vec![addr(9)]], Arc::new(NetCounters::default()));
        assert!(!m.member_unreachable(0, 0));
        assert!(!m.record_failure(0, 0));
        assert!(!m.record_failure(0, 0));
        assert!(!m.record_heartbeat_miss(0, 1));
        assert_eq!(m.primary(0), (0, addr(9), 1));
        assert!(!m.view().groups[0].down[0]);
    }

    #[test]
    fn promotion_exhaustion_leaves_group_lost() {
        let m = Membership::new(
            vec![vec![addr(1), addr(2)]],
            Arc::new(NetCounters::default()),
        );
        assert!(m.member_unreachable(0, 0));
        assert!(!m.member_unreachable(0, 1), "no standby left to promote");
        let view = m.view();
        assert!(view.groups[0].down.iter().all(|d| *d));
    }

    #[test]
    fn epochs_observe_and_advance() {
        let m = replicated3();
        m.observe_epoch(0, 5);
        assert_eq!(m.epoch(0), 5);
        m.observe_epoch(0, 3);
        assert_eq!(m.epoch(0), 5, "observe never lowers the epoch");
        assert_eq!(m.advance_epoch(0), 6);
    }

    #[test]
    fn promotions_count_failovers_and_fire_the_sink() {
        struct Counting {
            downs: AtomicU64,
            fails: AtomicU64,
        }
        impl StoreEventSink for Counting {
            fn on_part_down(&self, part: u32, _epoch: u64) {
                assert_eq!(part, 0);
                self.downs.fetch_add(1, Ordering::Relaxed);
            }
            fn on_failover(&self, part: u32, epoch: u64) {
                assert_eq!(part, 0);
                assert_eq!(epoch, 2);
                self.fails.fetch_add(1, Ordering::Relaxed);
            }
        }
        let metrics = Arc::new(NetCounters::default());
        let m = Membership::new(vec![vec![addr(1), addr(2)]], Arc::clone(&metrics));
        let sink = Arc::new(Counting {
            downs: AtomicU64::new(0),
            fails: AtomicU64::new(0),
        });
        m.set_sink(Arc::clone(&sink) as Arc<dyn StoreEventSink>);
        assert!(m.member_unreachable(0, 0));
        assert_eq!(sink.downs.load(Ordering::Relaxed), 1);
        assert_eq!(sink.fails.load(Ordering::Relaxed), 1);
        assert_eq!(metrics.snapshot().failovers, 1);
    }
}
