//! [`ChaosProxy`]: a deterministic, frame-aware TCP fault interposer —
//! the network-level twin of store-mem's `FaultPlan`.
//!
//! The proxy sits between a [`NetStore`](crate::NetStore) client and a
//! part server, parses the wire protocol's message frames, and injects
//! faults according to a seeded [`NetFaultPlan`]: sever the connection,
//! delay a frame, duplicate it, truncate it mid-frame, corrupt its CRC,
//! or black-hole it entirely while the connection stays up.
//!
//! # Determinism
//!
//! Every injection decision is a pure function of `(plan seed, rule
//! index, connection id, direction, frame index)` — no wall clock, no
//! thread scheduling, no global RNG.  Connection ids are assigned in
//! accept order and frame indices are counted per `(connection,
//! direction)`, so the same plan against the same client traffic yields
//! the same recorded [fault trace](ChaosProxy::trace) every run.  A
//! failing chaos test therefore only needs to print its seed to be
//! replayable.

use std::io::{self, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::Duration;

use ripple_wire::{msg_len, read_msg_from, write_msg};

/// Which way a frame is travelling through the proxy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Direction {
    /// Client → part server (requests).
    ToServer,
    /// Part server → client (responses).
    ToClient,
}

impl Direction {
    fn index(self) -> u64 {
        match self {
            Direction::ToServer => 0,
            Direction::ToClient => 1,
        }
    }
}

/// One kind of injectable network fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetFault {
    /// Shut the connection down in both directions.
    Sever,
    /// Hold the frame for the given duration, then forward it.
    Delay(Duration),
    /// Forward the frame twice.
    Duplicate,
    /// Forward only the first half of the frame's bytes, then sever.
    Truncate,
    /// Flip a bit in the frame's CRC so the receiver sees a corrupt
    /// frame.
    Corrupt,
    /// Drop the frame silently; the connection stays up.
    Blackhole,
}

/// One injection rule: a fault, its per-frame probability in parts per
/// million, and optional scoping to a request kind and/or direction.
#[derive(Debug, Clone, Copy)]
struct Rule {
    fault: NetFault,
    ppm: u32,
    kind: Option<u8>,
    dir: Option<Direction>,
}

/// A frame probability: parts per million, so `PPM_ALWAYS` fires on every
/// frame and `1_000` is one frame in a thousand.  Integer ppm keeps the
/// plan free of float rounding, which matters for replayability.
pub const PPM_ALWAYS: u32 = 1_000_000;

/// A seeded set of fault rules for a [`ChaosProxy`].
///
/// Rules are evaluated in insertion order per frame; the first rule that
/// matches the frame's kind/direction scope *and* wins its seeded roll
/// fires (at most one fault per frame).
#[derive(Debug, Clone)]
pub struct NetFaultPlan {
    seed: u64,
    rules: Vec<Rule>,
}

impl NetFaultPlan {
    /// An empty plan rolling with `seed`; a proxy with no rules forwards
    /// everything untouched.
    #[must_use]
    pub fn seeded(seed: u64) -> Self {
        Self {
            seed,
            rules: Vec::new(),
        }
    }

    /// The plan's seed (print this from failing tests so the run can be
    /// replayed).
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    fn rule(mut self, fault: NetFault, ppm: u32) -> Self {
        self.rules.push(Rule {
            fault,
            ppm: ppm.min(PPM_ALWAYS),
            kind: None,
            dir: None,
        });
        self
    }

    /// Adds a rule severing the connection with probability `ppm` (parts
    /// per million) per frame.
    #[must_use]
    pub fn sever(self, ppm: u32) -> Self {
        self.rule(NetFault::Sever, ppm)
    }

    /// Adds a rule delaying frames by `delay` with probability `ppm`.
    #[must_use]
    pub fn delay(self, ppm: u32, delay: Duration) -> Self {
        self.rule(NetFault::Delay(delay), ppm)
    }

    /// Adds a rule duplicating frames with probability `ppm`.
    #[must_use]
    pub fn duplicate(self, ppm: u32) -> Self {
        self.rule(NetFault::Duplicate, ppm)
    }

    /// Adds a rule truncating frames (half the bytes, then sever) with
    /// probability `ppm`.
    #[must_use]
    pub fn truncate(self, ppm: u32) -> Self {
        self.rule(NetFault::Truncate, ppm)
    }

    /// Adds a rule corrupting frame CRCs with probability `ppm`.
    #[must_use]
    pub fn corrupt(self, ppm: u32) -> Self {
        self.rule(NetFault::Corrupt, ppm)
    }

    /// Adds a rule black-holing frames (dropped, connection stays up)
    /// with probability `ppm`.
    #[must_use]
    pub fn blackhole(self, ppm: u32) -> Self {
        self.rule(NetFault::Blackhole, ppm)
    }

    /// Scopes the most recently added rule to frames of `kind` (a
    /// `proto::REQ_*`/`RESP_*` constant).
    ///
    /// # Panics
    ///
    /// Panics if no rule has been added yet.
    #[must_use]
    pub fn on_kind(mut self, kind: u8) -> Self {
        self.rules
            .last_mut()
            .expect("on_kind needs a preceding rule")
            .kind = Some(kind);
        self
    }

    /// Scopes the most recently added rule to frames travelling `dir`.
    ///
    /// # Panics
    ///
    /// Panics if no rule has been added yet.
    #[must_use]
    pub fn on_direction(mut self, dir: Direction) -> Self {
        self.rules
            .last_mut()
            .expect("on_direction needs a preceding rule")
            .dir = Some(dir);
        self
    }

    /// The fault (and its rule's fault value) to inject for a frame, if
    /// any: the first matching rule whose seeded roll fires.
    fn decide(&self, conn: u64, dir: Direction, frame: u64, kind: u8) -> Option<NetFault> {
        for (idx, rule) in self.rules.iter().enumerate() {
            if rule.kind.is_some_and(|k| k != kind) {
                continue;
            }
            if rule.dir.is_some_and(|d| d != dir) {
                continue;
            }
            let roll = splitmix64(
                self.seed
                    ^ (idx as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    ^ conn.wrapping_mul(0xBF58_476D_1CE4_E5B9)
                    ^ dir.index().wrapping_mul(0x94D0_49BB_1331_11EB)
                    ^ frame.wrapping_mul(0xD6E8_FEB8_6659_FD93),
            ) % 1_000_000;
            if roll < u64::from(rule.ppm) {
                return Some(rule.fault);
            }
        }
        None
    }
}

/// `SplitMix64`: a tiny, high-quality mixing function — decisions derive
/// from it so the plan needs no stateful RNG.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// One injected fault, as recorded in the proxy's replayable trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NetFaultRecord {
    /// Connection id, in accept order.
    pub conn: u64,
    /// Which way the frame was travelling.
    pub dir: Direction,
    /// Frame index within `(conn, dir)`.
    pub frame: u64,
    /// The frame's kind byte.
    pub kind: u8,
    /// The fault that fired.
    pub fault: NetFault,
}

#[derive(Debug, Default)]
struct Trace {
    records: Mutex<Vec<NetFaultRecord>>,
}

impl Trace {
    fn record(&self, r: NetFaultRecord) {
        self.records
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(r);
    }

    fn sorted(&self) -> Vec<NetFaultRecord> {
        let mut v = self
            .records
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone();
        v.sort_by_key(|r| (r.conn, r.dir, r.frame));
        v
    }
}

/// A running chaos proxy: connect a [`NetStore`](crate::NetStore) to
/// [`ChaosProxy::addr`] instead of the real server and every frame passes
/// through the plan.  Stops accepting on drop; established pumps close
/// when either endpoint does.
#[derive(Debug)]
pub struct ChaosProxy {
    addr: SocketAddr,
    seed: u64,
    trace: Arc<Trace>,
    stop: Arc<AtomicBool>,
    join: Option<JoinHandle<()>>,
}

impl ChaosProxy {
    /// Spawns a proxy on an ephemeral loopback port forwarding to
    /// `upstream` under `plan`.
    ///
    /// # Errors
    ///
    /// Propagates socket errors from binding the proxy listener.
    pub fn spawn(upstream: SocketAddr, plan: NetFaultPlan) -> io::Result<Self> {
        let listener = TcpListener::bind((std::net::Ipv4Addr::LOCALHOST, 0))?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let seed = plan.seed();
        let trace = Arc::new(Trace::default());
        let stop = Arc::new(AtomicBool::new(false));
        let accept_trace = Arc::clone(&trace);
        let accept_stop = Arc::clone(&stop);
        let join = std::thread::Builder::new()
            .name(format!("chaos-proxy-{addr}"))
            .spawn(move || {
                accept_loop(&listener, upstream, &plan, &accept_trace, &accept_stop);
            })?;
        Ok(Self {
            addr,
            seed,
            trace,
            stop,
            join: Some(join),
        })
    }

    /// The address to connect the client to.
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The plan's seed, for replay messages.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The faults injected so far, sorted by `(conn, direction, frame)` —
    /// two runs of the same plan against the same traffic produce equal
    /// traces.
    #[must_use]
    pub fn trace(&self) -> Vec<NetFaultRecord> {
        self.trace.sorted()
    }

    /// Stops accepting and joins the accept thread.  Established pump
    /// threads die when either side closes.
    pub fn stop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
    }
}

impl Drop for ChaosProxy {
    fn drop(&mut self) {
        self.stop();
    }
}

fn accept_loop(
    listener: &TcpListener,
    upstream: SocketAddr,
    plan: &NetFaultPlan,
    trace: &Arc<Trace>,
    stop: &AtomicBool,
) {
    let mut next_conn = 0u64;
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((client, _)) => {
                let conn = next_conn;
                next_conn += 1;
                let _ = client.set_nodelay(true);
                let _ = client.set_nonblocking(false);
                let Ok(server) = TcpStream::connect_timeout(&upstream, Duration::from_secs(5))
                else {
                    let _ = client.shutdown(Shutdown::Both);
                    continue;
                };
                let _ = server.set_nodelay(true);
                spawn_pump(conn, Direction::ToServer, &client, &server, plan, trace);
                spawn_pump(conn, Direction::ToClient, &server, &client, plan, trace);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(2)),
        }
    }
}

/// Spawns one direction's frame pump: parse a frame from `src`, consult
/// the plan, re-emit (or mangle) it into `dst`.
fn spawn_pump(
    conn: u64,
    dir: Direction,
    src: &TcpStream,
    dst: &TcpStream,
    plan: &NetFaultPlan,
    trace: &Arc<Trace>,
) {
    let (Ok(mut src), Ok(mut dst)) = (src.try_clone(), dst.try_clone()) else {
        let _ = src.shutdown(Shutdown::Both);
        let _ = dst.shutdown(Shutdown::Both);
        return;
    };
    let plan = plan.clone();
    let trace = Arc::clone(trace);
    let _ = std::thread::Builder::new()
        .name(format!("chaos-pump-c{conn}"))
        .spawn(move || {
            let mut frame_idx = 0u64;
            loop {
                let Ok(frame) = read_msg_from(&mut src) else {
                    // Source gone: mirror the close downstream.
                    let _ = dst.shutdown(Shutdown::Both);
                    return;
                };
                let idx = frame_idx;
                frame_idx += 1;
                let mut buf = Vec::with_capacity(msg_len(frame.payload.len()));
                write_msg(&mut buf, frame.kind, frame.id, &frame.payload);
                let fault = plan.decide(conn, dir, idx, frame.kind);
                if let Some(fault) = fault {
                    trace.record(NetFaultRecord {
                        conn,
                        dir,
                        frame: idx,
                        kind: frame.kind,
                        fault,
                    });
                }
                match fault {
                    None => {
                        if dst.write_all(&buf).is_err() {
                            let _ = src.shutdown(Shutdown::Both);
                            return;
                        }
                    }
                    Some(NetFault::Sever) => {
                        let _ = src.shutdown(Shutdown::Both);
                        let _ = dst.shutdown(Shutdown::Both);
                        return;
                    }
                    Some(NetFault::Delay(d)) => {
                        std::thread::sleep(d);
                        if dst.write_all(&buf).is_err() {
                            let _ = src.shutdown(Shutdown::Both);
                            return;
                        }
                    }
                    Some(NetFault::Duplicate) => {
                        if dst.write_all(&buf).is_err() || dst.write_all(&buf).is_err() {
                            let _ = src.shutdown(Shutdown::Both);
                            return;
                        }
                    }
                    Some(NetFault::Truncate) => {
                        let _ = dst.write_all(&buf[..buf.len() / 2]);
                        let _ = src.shutdown(Shutdown::Both);
                        let _ = dst.shutdown(Shutdown::Both);
                        return;
                    }
                    Some(NetFault::Corrupt) => {
                        // The CRC is the frame's final four bytes; one
                        // flipped bit guarantees a checksum mismatch at
                        // the receiver without touching the length
                        // prefix.
                        let last = buf.len() - 1;
                        buf[last] ^= 0x01;
                        if dst.write_all(&buf).is_err() {
                            let _ = src.shutdown(Shutdown::Both);
                            return;
                        }
                    }
                    Some(NetFault::Blackhole) => {}
                }
            }
        });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decisions_are_pure_functions_of_coordinates() {
        let plan = NetFaultPlan::seeded(0x00C0_FFEE)
            .sever(50_000)
            .corrupt(50_000);
        for conn in 0..4 {
            for frame in 0..200 {
                let a = plan.decide(conn, Direction::ToServer, frame, 0x10);
                let b = plan.decide(conn, Direction::ToServer, frame, 0x10);
                assert_eq!(a, b);
            }
        }
    }

    #[test]
    fn different_seeds_give_different_fault_patterns() {
        let a = NetFaultPlan::seeded(1).sever(100_000);
        let b = NetFaultPlan::seeded(2).sever(100_000);
        let hits = |p: &NetFaultPlan| {
            (0..1000)
                .filter(|&f| p.decide(0, Direction::ToServer, f, 0x10).is_some())
                .collect::<Vec<_>>()
        };
        assert_ne!(hits(&a), hits(&b));
    }

    #[test]
    fn probability_one_always_fires_and_zero_never_does() {
        let always = NetFaultPlan::seeded(7).blackhole(PPM_ALWAYS);
        let never = NetFaultPlan::seeded(7).blackhole(0);
        for f in 0..100 {
            assert_eq!(
                always.decide(0, Direction::ToClient, f, 0x80),
                Some(NetFault::Blackhole)
            );
            assert_eq!(never.decide(0, Direction::ToClient, f, 0x80), None);
        }
    }

    #[test]
    fn kind_and_direction_scopes_filter_rules() {
        let plan = NetFaultPlan::seeded(3)
            .sever(PPM_ALWAYS)
            .on_kind(0x11)
            .on_direction(Direction::ToServer);
        assert_eq!(
            plan.decide(0, Direction::ToServer, 0, 0x11),
            Some(NetFault::Sever)
        );
        assert_eq!(plan.decide(0, Direction::ToServer, 0, 0x10), None);
        assert_eq!(plan.decide(0, Direction::ToClient, 0, 0x11), None);
    }
}
