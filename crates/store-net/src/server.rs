//! The part server: hosts parts of an inner [`KvStore`] behind the wire
//! protocol.
//!
//! A part server wraps any local store (memory or disk) and serves the
//! full table SPI over TCP: DDL, point operations, batched writes,
//! streamed part enumeration, and dispatch of *registered* tasks.  A
//! cluster runs one server per host; each server is configured with an
//! identically-shaped inner store, and the client routes each part to its
//! owning server — so every server's inner store holds data only for the
//! parts it owns (plus full replicas of ubiquitous tables, which clients
//! broadcast).
//!
//! Mobile code cannot cross the wire as a closure; [`REQ_RUN_TASK`]
//! therefore dispatches by *name* against the server's [`TaskRegistry`]
//! (the paper's pre-registered operation model).  Unregistered names fail
//! with [`KvError::NoSuchTask`]; ad-hoc closures fall back to data
//! shipping through the client's remote `PartView`.
//!
//! # Fencing and lifecycle
//!
//! When the server participates in a replica group, clients announce
//! their group epoch with [`REQ_HELLO`](crate::proto::REQ_HELLO); the
//! server remembers the highest epoch it has ever seen and refuses both
//! stale handshakes and data-plane requests on connections handshaken
//! below that watermark with [`KvError::StaleEpoch`].  That is the whole
//! zombie defence: a deposed primary only ever *refuses* writes, because
//! the first connection fenced at the post-promotion epoch raises the
//! watermark for good.
//!
//! The handle distinguishes planned shutdown from a crash:
//! [`ServerHandle::stop`] drains in-flight requests within a bounded
//! grace period before closing, while [`ServerHandle::abort`] drops
//! everything on the floor mid-flight — which is what failover tests use
//! to kill a primary.

use std::io::{self, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use bytes::Bytes;
use ripple_kv::{KvError, KvStore, PartId, RoutedKey, ScanControl, Table, TableSpec, TaskRegistry};
use ripple_wire::{from_wire, msg_len, read_msg_from, to_wire, write_msg};

use crate::proto::{self, TableMeta};

/// Shared lifecycle state between the handle, the accept loop, and every
/// connection thread.
#[derive(Debug, Default)]
struct ServerState {
    /// Highest fencing epoch any client has announced.
    epoch: AtomicU64,
    /// Requests currently being processed (including spawned task
    /// dispatches).
    inflight: AtomicU64,
    /// Planned shutdown: stop accepting, let in-flight work drain.
    stopping: AtomicBool,
    /// Crash-like shutdown: refuse everything immediately.
    aborted: AtomicBool,
    /// Accepted connection sockets, kept so shutdown can sever them.
    conns: Mutex<Vec<TcpStream>>,
}

impl ServerState {
    fn lock_conns(&self) -> std::sync::MutexGuard<'_, Vec<TcpStream>> {
        self.conns.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn sever_conns(&self) {
        for stream in self.lock_conns().drain(..) {
            let _ = stream.shutdown(Shutdown::Both);
        }
    }
}

/// Decrements the in-flight count when the request finishes, however it
/// finishes.
struct InflightGuard(Arc<ServerState>);

impl InflightGuard {
    fn enter(state: &Arc<ServerState>) -> Self {
        state.inflight.fetch_add(1, Ordering::SeqCst);
        Self(Arc::clone(state))
    }
}

impl Drop for InflightGuard {
    fn drop(&mut self) {
        self.0.inflight.fetch_sub(1, Ordering::SeqCst);
    }
}

/// A part server ready to be bound to an address.
#[derive(Debug, Clone)]
pub struct PartServer<S: KvStore> {
    store: S,
    registry: TaskRegistry,
}

impl<S: KvStore> PartServer<S> {
    /// Wraps `store` in a server with an empty task registry.
    pub fn new(store: S) -> Self {
        Self {
            store,
            registry: TaskRegistry::default(),
        }
    }

    /// Replaces the server's task registry, so several servers can share
    /// one set of registrations.
    #[must_use]
    pub fn with_registry(mut self, registry: TaskRegistry) -> Self {
        self.registry = registry;
        self
    }

    /// The server's task registry, for registering named tasks.
    pub fn registry(&self) -> &TaskRegistry {
        &self.registry
    }

    /// Binds a listener on `addr` and starts serving on background
    /// threads.  Pass port 0 to let the OS pick; the bound address is on
    /// the returned handle.
    ///
    /// # Errors
    ///
    /// Propagates socket errors from binding the listener.
    pub fn bind(self, addr: SocketAddr) -> io::Result<ServerHandle> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let state = Arc::new(ServerState::default());
        let accept_state = Arc::clone(&state);
        let join = std::thread::Builder::new()
            .name(format!("part-server-{local}"))
            .spawn(move || accept_loop(&listener, &self, &accept_state))?;
        Ok(ServerHandle {
            addr: local,
            state,
            join: Some(join),
        })
    }
}

/// Grace period [`ServerHandle::stop`] allows in-flight requests before
/// severing their connections.
pub const STOP_GRACE: Duration = Duration::from_secs(1);

/// Handle on a running part server; stops it (gracefully) when dropped.
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    state: Arc<ServerState>,
    join: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The address the server is listening on.
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The highest fencing epoch any client has announced to this server.
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.state.epoch.load(Ordering::SeqCst)
    }

    /// Requests currently being processed — observable while a graceful
    /// stop drains.
    #[must_use]
    pub fn inflight(&self) -> u64 {
        self.state.inflight.load(Ordering::SeqCst)
    }

    /// Planned shutdown with the default grace ([`STOP_GRACE`]): stops
    /// accepting connections, waits for in-flight requests to drain, then
    /// severs remaining connections and joins the accept thread.
    pub fn stop(&mut self) {
        self.stop_with_grace(STOP_GRACE);
    }

    /// Planned shutdown with an explicit drain bound.  In-flight requests
    /// that finish within `grace` get their responses; only then (or at
    /// the bound) are connections severed — so a planned stop of a quiet
    /// server is loss-free, unlike [`ServerHandle::abort`].
    pub fn stop_with_grace(&mut self, grace: Duration) {
        self.state.stopping.store(true, Ordering::SeqCst);
        if !self.state.aborted.load(Ordering::SeqCst) {
            let deadline = Instant::now() + grace;
            while self.state.inflight.load(Ordering::SeqCst) > 0 && Instant::now() < deadline {
                std::thread::sleep(Duration::from_millis(1));
            }
        }
        self.state.sever_conns();
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
    }

    /// Crash-like shutdown: refuses all further requests and severs every
    /// connection immediately, abandoning in-flight work mid-frame.  Takes
    /// `&self` so a test observer can kill the server from inside a
    /// running job; the accept thread is reaped by the eventual
    /// [`ServerHandle::stop`] (or drop).
    pub fn abort(&self) {
        self.state.aborted.store(true, Ordering::SeqCst);
        self.state.stopping.store(true, Ordering::SeqCst);
        self.state.sever_conns();
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop();
    }
}

fn accept_loop<S: KvStore>(
    listener: &TcpListener,
    server: &PartServer<S>,
    state: &Arc<ServerState>,
) {
    while !state.stopping.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let _ = stream.set_nodelay(true);
                let _ = stream.set_nonblocking(false);
                if let Ok(clone) = stream.try_clone() {
                    state.lock_conns().push(clone);
                }
                let server = server.clone();
                let state = Arc::clone(state);
                let _ = std::thread::Builder::new()
                    .name("part-server-conn".to_owned())
                    .spawn(move || serve_conn(&server, &state, stream));
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
}

/// Writes one response frame under the shared writer lock.
fn send(writer: &Mutex<TcpStream>, kind: u8, id: u64, payload: &[u8]) -> io::Result<()> {
    let mut buf = Vec::with_capacity(msg_len(payload.len()));
    write_msg(&mut buf, kind, id, payload);
    writer
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .write_all(&buf)
}

fn send_result(writer: &Mutex<TcpStream>, id: u64, result: Result<Bytes, KvError>) {
    let _ = match result {
        Ok(payload) => send(writer, proto::RESP_OK, id, &payload),
        Err(e) => send(writer, proto::RESP_ERR, id, &proto::encode_err(&e)),
    };
}

fn serve_conn<S: KvStore>(server: &PartServer<S>, state: &Arc<ServerState>, mut stream: TcpStream) {
    let writer = match stream.try_clone() {
        Ok(w) => Arc::new(Mutex::new(w)),
        Err(_) => return,
    };
    // The epoch this connection announced via `REQ_HELLO`; connections
    // that never handshake (unreplicated clients) stay at 0, which is
    // never stale because the server's watermark also starts at 0.
    let mut hello_epoch = 0u64;
    loop {
        // A read error means the peer is gone or the stream is corrupt;
        // either way the connection is done.  Shut the socket down
        // explicitly — the lifecycle state holds a clone of it, so a
        // plain drop would leave the TCP connection half-open and the
        // peer waiting out its timeout instead of seeing the close.
        let Ok(frame) = read_msg_from(&mut stream) else {
            let _ = stream.shutdown(Shutdown::Both);
            return;
        };
        if state.aborted.load(Ordering::SeqCst) {
            let _ = stream.shutdown(Shutdown::Both);
            return;
        }
        match frame.kind {
            proto::REQ_PING => {
                let epoch = state.epoch.load(Ordering::SeqCst);
                let _ = send(&writer, proto::RESP_OK, frame.id, &to_wire(&epoch));
            }
            proto::REQ_HELLO => {
                let announced: u64 = from_wire(&frame.payload).unwrap_or(0);
                let current = state.epoch.fetch_max(announced, Ordering::SeqCst);
                if announced < current {
                    let err = KvError::StaleEpoch {
                        seen: announced,
                        current,
                    };
                    let _ = send(&writer, proto::RESP_ERR, frame.id, &proto::encode_err(&err));
                } else {
                    hello_epoch = announced;
                    let _ = send(&writer, proto::RESP_OK, frame.id, &to_wire(&announced));
                }
            }
            _ if hello_epoch < state.epoch.load(Ordering::SeqCst) => {
                // This connection was fenced at an epoch the group has
                // moved past: refuse without touching state, so a zombie
                // primary's clients cannot corrupt a promoted replica.
                let err = KvError::StaleEpoch {
                    seen: hello_epoch,
                    current: state.epoch.load(Ordering::SeqCst),
                };
                let _ = send(&writer, proto::RESP_ERR, frame.id, &proto::encode_err(&err));
            }
            proto::REQ_SCAN | proto::REQ_DRAIN => {
                let _guard = InflightGuard::enter(state);
                let drain = frame.kind == proto::REQ_DRAIN;
                match enumerate(&server.store, &frame.payload, drain) {
                    Ok(pairs) => stream_pairs(&writer, frame.id, &pairs),
                    Err(e) => {
                        let _ = send(&writer, proto::RESP_ERR, frame.id, &proto::encode_err(&e));
                    }
                }
            }
            proto::REQ_RUN_TASK => {
                // Tasks may block on other parts (even ones on this same
                // connection), so they must not occupy the service loop.
                let guard = InflightGuard::enter(state);
                let server = server.clone();
                let writer = Arc::clone(&writer);
                let id = frame.id;
                let payload = frame.payload;
                let _ = std::thread::Builder::new()
                    .name("part-server-task".to_owned())
                    .spawn(move || {
                        let _guard = guard;
                        send_result(&writer, id, run_task(&server, &payload));
                    });
            }
            kind => {
                let _guard = InflightGuard::enter(state);
                send_result(
                    &writer,
                    frame.id,
                    unary(&server.store, kind, &frame.payload),
                );
            }
        }
    }
}

fn decode<T: ripple_wire::Decode>(payload: &[u8]) -> Result<T, KvError> {
    from_wire(payload).map_err(|e| KvError::Backend {
        detail: format!("malformed request payload: {e}"),
    })
}

fn meta_of(t: &impl Table) -> TableMeta {
    TableMeta {
        parts: t.part_count(),
        ubiquitous: t.is_ubiquitous(),
        partitioning_id: t.partitioning_id(),
    }
}

/// Handles one single-response request and produces its `RESP_OK` payload.
fn unary<S: KvStore>(store: &S, kind: u8, payload: &[u8]) -> Result<Bytes, KvError> {
    match kind {
        proto::REQ_CREATE_TABLE => {
            let (name, parts, ubiquitous, replicated): (String, u32, bool, bool) = decode(payload)?;
            let mut spec = TableSpec::new(name);
            spec.parts(parts);
            if ubiquitous {
                spec.ubiquitous();
            }
            if replicated {
                spec.replicated();
            }
            let t = store.create_table(&spec)?;
            Ok(meta_of(&t).encode())
        }
        proto::REQ_CREATE_LIKE | proto::REQ_CREATE_LIKE_REPLICATED => {
            let (name, like): (String, String) = decode(payload)?;
            let like = store.lookup_table(&like)?;
            let t = if kind == proto::REQ_CREATE_LIKE {
                store.create_table_like(&name, &like)?
            } else {
                store.create_table_like_replicated(&name, &like)?
            };
            Ok(meta_of(&t).encode())
        }
        proto::REQ_LOOKUP => {
            let name: String = decode(payload)?;
            let t = store.lookup_table(&name)?;
            Ok(meta_of(&t).encode())
        }
        proto::REQ_DROP => {
            let name: String = decode(payload)?;
            store.drop_table(&name)?;
            Ok(Bytes::new())
        }
        proto::REQ_TABLE_NAMES => {
            let names = store.table_names();
            Ok(ripple_wire::to_wire(&names))
        }
        proto::REQ_GET => {
            let (table, key): (String, RoutedKey) = decode(payload)?;
            let t = store.lookup_table(&table)?;
            Ok(ripple_wire::to_wire(&t.get(&key)?))
        }
        proto::REQ_PUT => {
            let (table, key, value): (String, RoutedKey, Bytes) = decode(payload)?;
            let t = store.lookup_table(&table)?;
            Ok(ripple_wire::to_wire(&t.put(key, value)?))
        }
        proto::REQ_DELETE => {
            let (table, key): (String, RoutedKey) = decode(payload)?;
            let t = store.lookup_table(&table)?;
            Ok(ripple_wire::to_wire(&t.delete(&key)?))
        }
        proto::REQ_LEN => {
            let table: String = decode(payload)?;
            let t = store.lookup_table(&table)?;
            Ok(ripple_wire::to_wire(&(t.len()? as u64)))
        }
        proto::REQ_CLEAR => {
            let table: String = decode(payload)?;
            let t = store.lookup_table(&table)?;
            t.clear()?;
            Ok(Bytes::new())
        }
        proto::REQ_PART_LEN => {
            let (table, part): (String, u32) = decode(payload)?;
            let t = store.lookup_table(&table)?;
            check_part(&t, part)?;
            let name = table.clone();
            let n = store
                .run_at(&t, PartId(part), move |view| view.len(&name))
                .join()??;
            Ok(ripple_wire::to_wire(&(n as u64)))
        }
        proto::REQ_APPLY => {
            let (table, ops): (String, Vec<(u8, RoutedKey, Bytes)>) = decode(payload)?;
            let t = store.lookup_table(&table)?;
            let count = ops.len() as u64;
            for (op, key, value) in ops {
                if op == proto::APPLY_PUT {
                    t.put(key, value)?;
                } else {
                    t.delete(&key)?;
                }
            }
            Ok(ripple_wire::to_wire(&count))
        }
        other => Err(KvError::Backend {
            detail: format!("unknown request kind {other:#04x}"),
        }),
    }
}

fn check_part(t: &impl Table, part: u32) -> Result<(), KvError> {
    if part < t.part_count() {
        Ok(())
    } else {
        Err(KvError::PartOutOfRange {
            part,
            parts: t.part_count(),
        })
    }
}

/// Collects the pairs of one part for a scan or drain stream.
fn enumerate<S: KvStore>(
    store: &S,
    payload: &[u8],
    drain: bool,
) -> Result<Vec<(RoutedKey, Bytes)>, KvError> {
    let (table, part): (String, u32) = decode(payload)?;
    let t = store.lookup_table(&table)?;
    check_part(&t, part)?;
    store
        .run_at(&t, PartId(part), move |view| {
            let mut out: Vec<(RoutedKey, Bytes)> = Vec::new();
            if drain {
                view.drain(&table, &mut |k, v| {
                    out.push((k, v));
                    ScanControl::Continue
                })?;
            } else {
                view.scan(&table, &mut |k, v| {
                    out.push((k.clone(), Bytes::copy_from_slice(v)));
                    ScanControl::Continue
                })?;
            }
            Ok(out)
        })
        .join()?
}

/// Sends `pairs` as size-bounded `RESP_CHUNK` frames followed by
/// `RESP_END`.
fn stream_pairs(writer: &Mutex<TcpStream>, id: u64, pairs: &[(RoutedKey, Bytes)]) {
    let mut chunk: Vec<(RoutedKey, Bytes)> = Vec::new();
    let mut chunk_bytes = 0usize;
    for (k, v) in pairs {
        chunk_bytes += k.body().len() + v.len() + 16;
        chunk.push((k.clone(), v.clone()));
        if chunk_bytes >= proto::CHUNK_TARGET_BYTES {
            if send(writer, proto::RESP_CHUNK, id, &proto::encode_pairs(&chunk)).is_err() {
                return;
            }
            chunk.clear();
            chunk_bytes = 0;
        }
    }
    if !chunk.is_empty()
        && send(writer, proto::RESP_CHUNK, id, &proto::encode_pairs(&chunk)).is_err()
    {
        return;
    }
    let _ = send(writer, proto::RESP_END, id, &[]);
}

/// Dispatches one registered task and returns its byte result.
fn run_task<S: KvStore>(server: &PartServer<S>, payload: &[u8]) -> Result<Bytes, KvError> {
    let (reference, part, task, arg): (String, u32, String, Bytes) = decode(payload)?;
    let t = server.store.lookup_table(&reference)?;
    check_part(&t, part)?;
    let f = server
        .registry
        .get(&task)
        .or_else(|| server.store.task_registry().and_then(|reg| reg.get(&task)))
        .ok_or(KvError::NoSuchTask { name: task })?;
    server
        .store
        .run_at(&t, PartId(part), move |view| f(view, arg))
        .join()?
}
