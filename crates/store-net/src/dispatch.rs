//! The response-dispatch table one connection shares between its writer
//! side (registering requests) and its reader thread (routing responses
//! and, on connection loss, failing everything).
//!
//! The table guards against a *stranding race*: a request that registers
//! itself concurrently with the reader thread declaring the connection
//! dead.  If death were a separate flag checked before registration (the
//! previous design), this interleaving stranded the request forever —
//!
//! 1. writer checks `dead == false`,
//! 2. reader drains the table and sets `dead = true`,
//! 3. writer inserts its completer into the already-drained table,
//!
//! — nobody ever completes it, and the caller burns the full response
//! timeout.  Here the death flag lives *inside* the table's mutex:
//! [`Dispatch::register`] refuses registration once dead (the caller fails
//! fast and retries on a fresh connection) and [`Dispatch::kill`] marks
//! death and drains atomically, so every completer is either refused or
//! drained — never stranded.  `tests/loom_pool.rs` model-checks exactly
//! this property.

use std::collections::HashMap;

// Under `--cfg loom` the lock comes from the loom harness so the model
// tests can explore register/kill interleavings.
#[cfg(loom)]
use loom::sync::Mutex;
#[cfg(not(loom))]
use std::sync::Mutex;
use std::sync::PoisonError;

/// Per-connection dispatch table mapping in-flight request ids to their
/// completers (response senders, in the pool's case).
#[derive(Debug)]
pub struct Dispatch<C> {
    state: Mutex<State<C>>,
}

#[derive(Debug)]
struct State<C> {
    dead: bool,
    entries: HashMap<u64, C>,
}

impl<C> Default for Dispatch<C> {
    fn default() -> Self {
        Self::new()
    }
}

impl<C> Dispatch<C> {
    /// An empty, live table.
    #[must_use]
    pub fn new() -> Self {
        Self {
            state: Mutex::new(State {
                dead: false,
                entries: HashMap::new(),
            }),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, State<C>> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Registers `completer` under `id`.  Returns `false` — without
    /// registering — if the connection has already been killed; the caller
    /// must then fail the request itself rather than wait for a response
    /// that can no longer arrive.
    #[must_use]
    pub fn register(&self, id: u64, completer: C) -> bool {
        let mut state = self.lock();
        if state.dead {
            return false;
        }
        state.entries.insert(id, completer);
        true
    }

    /// Removes and returns the completer registered under `id`, if any —
    /// for terminal response frames and for unwinding a failed send.
    pub fn take(&self, id: u64) -> Option<C> {
        self.lock().entries.remove(&id)
    }

    /// Runs `f` on the completer registered under `id` while it stays
    /// registered — for streamed (non-terminal) response frames.  Returns
    /// `None` if no such registration exists.
    pub fn with<R>(&self, id: u64, f: impl FnOnce(&C) -> R) -> Option<R> {
        Some(f(self.lock().entries.get(&id)?))
    }

    /// Whether [`Dispatch::kill`] has been called.
    pub fn is_dead(&self) -> bool {
        self.lock().dead
    }

    /// Marks the connection dead and drains every registered completer, in
    /// one critical section: any registration that did not make it into the
    /// returned drain is refused from now on.  The caller completes the
    /// drained entries (with an error) outside the lock.
    pub fn kill(&self) -> Vec<(u64, C)> {
        let mut state = self.lock();
        state.dead = true;
        state.entries.drain().collect()
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;

    #[test]
    fn register_take_roundtrip() {
        let d: Dispatch<&'static str> = Dispatch::new();
        assert!(d.register(7, "a"));
        assert_eq!(d.with(7, |c| *c), Some("a"));
        assert_eq!(d.take(7), Some("a"));
        assert_eq!(d.take(7), None);
        assert_eq!(d.with(7, |c| *c), None);
    }

    #[test]
    fn kill_drains_and_refuses_later_registrations() {
        let d: Dispatch<u32> = Dispatch::new();
        assert!(d.register(1, 10));
        assert!(d.register(2, 20));
        assert!(!d.is_dead());
        let mut drained = d.kill();
        drained.sort_unstable();
        assert_eq!(drained, vec![(1, 10), (2, 20)]);
        assert!(d.is_dead());
        assert!(!d.register(3, 30), "registration after death must refuse");
        assert_eq!(d.take(3), None);
        assert!(d.kill().is_empty(), "second kill has nothing to drain");
    }
}
