//! The part-server protocol: message kinds, payload encodings, and the
//! error codec.
//!
//! Every protocol message travels in a `ripple-wire` [message
//! frame](ripple_wire::read_msg_from): `[len][kind][request id][payload][crc]`.
//! The request id is assigned by the client; responses echo it, which is
//! what lets a connection carry many requests at once (pipelining) and
//! return responses out of order.  Payloads are ordinary `ripple-wire`
//! values — the same codec the platform already uses for marshalling —
//! so nothing here invents a second serialization format.
//!
//! # Frame catalogue
//!
//! | kind | direction | payload |
//! |---|---|---|
//! | [`REQ_CREATE_TABLE`] | → | `(name, parts, ubiquitous, replicated)` |
//! | [`REQ_CREATE_LIKE`] | → | `(name, like)` |
//! | [`REQ_CREATE_LIKE_REPLICATED`] | → | `(name, like)` |
//! | [`REQ_LOOKUP`] | → | `name` |
//! | [`REQ_DROP`] | → | `name` |
//! | [`REQ_TABLE_NAMES`] | → | `()` |
//! | [`REQ_GET`] | → | `(table, key)` |
//! | [`REQ_PUT`] | → | `(table, key, value)` |
//! | [`REQ_DELETE`] | → | `(table, key)` |
//! | [`REQ_LEN`] | → | `table` |
//! | [`REQ_CLEAR`] | → | `table` |
//! | [`REQ_PART_LEN`] | → | `(table, part)` |
//! | [`REQ_SCAN`] | → | `(table, part)` — streamed response |
//! | [`REQ_DRAIN`] | → | `(table, part)` — streamed response |
//! | [`REQ_APPLY`] | → | `(table, Vec<(op, key, value)>)` — batched writes |
//! | [`REQ_RUN_TASK`] | → | `(reference, part, task, arg)` |
//! | [`REQ_HELLO`] | → | `epoch` — fencing handshake; `RESP_OK` echoes the server epoch |
//! | [`REQ_PING`] | → | `()` — liveness probe; `RESP_OK` carries the server epoch |
//! | [`RESP_OK`] | ← | per request (see the handler) |
//! | [`RESP_ERR`] | ← | encoded [`KvError`] |
//! | [`RESP_CHUNK`] | ← | `Vec<(key, value)>` — one slice of a stream |
//! | [`RESP_END`] | ← | `()` — terminates a stream |
//!
//! Unary requests get exactly one `RESP_OK`/`RESP_ERR`.  Streamed requests
//! (scan, drain) get zero or more `RESP_CHUNK` frames followed by
//! `RESP_END` (or `RESP_ERR`, which also terminates the stream).

use bytes::Bytes;
use ripple_kv::{KvError, RoutedKey};
use ripple_wire::{from_wire, to_wire};

/// Create a table from a spec.
pub const REQ_CREATE_TABLE: u8 = 0x01;
/// Create a table co-partitioned with an existing one.
pub const REQ_CREATE_LIKE: u8 = 0x02;
/// Create a co-partitioned table with per-part replicas.
pub const REQ_CREATE_LIKE_REPLICATED: u8 = 0x03;
/// Look up a table's metadata.
pub const REQ_LOOKUP: u8 = 0x04;
/// Drop a table.
pub const REQ_DROP: u8 = 0x05;
/// List live table names.
pub const REQ_TABLE_NAMES: u8 = 0x06;
/// Read one key.
pub const REQ_GET: u8 = 0x10;
/// Write one key, returning the previous value.
pub const REQ_PUT: u8 = 0x11;
/// Delete one key, returning whether it was present.
pub const REQ_DELETE: u8 = 0x12;
/// Server-local entry count of a table.
pub const REQ_LEN: u8 = 0x13;
/// Remove every entry of a table.
pub const REQ_CLEAR: u8 = 0x14;
/// Entry count of one part of a table.
pub const REQ_PART_LEN: u8 = 0x15;
/// Stream the pairs of one part.
pub const REQ_SCAN: u8 = 0x20;
/// Stream *and remove* the pairs of one part.
pub const REQ_DRAIN: u8 = 0x21;
/// Apply a batch of puts/deletes in one round trip.
pub const REQ_APPLY: u8 = 0x30;
/// Dispatch a registered named task adjacent to a part.
pub const REQ_RUN_TASK: u8 = 0x40;
/// Fencing handshake: the client announces the replica-group epoch it is
/// operating at; the server remembers the highest epoch it has seen and
/// refuses the handshake (and all later data-plane requests on the
/// connection) when the announced epoch is stale.
pub const REQ_HELLO: u8 = 0x50;
/// Liveness probe; the response carries the server's fencing epoch.
pub const REQ_PING: u8 = 0x51;

/// Success response; payload depends on the request kind.
pub const RESP_OK: u8 = 0x80;
/// Failure response; payload is an encoded [`KvError`].
pub const RESP_ERR: u8 = 0x81;
/// One slice of a streamed scan/drain: `Vec<(RoutedKey, Bytes)>`.
pub const RESP_CHUNK: u8 = 0x82;
/// End of a streamed response.
pub const RESP_END: u8 = 0x83;

/// A batched write in a [`REQ_APPLY`] payload.
pub const APPLY_PUT: u8 = 0;
/// A batched delete in a [`REQ_APPLY`] payload.
pub const APPLY_DELETE: u8 = 1;

/// Target size of one [`RESP_CHUNK`] payload; the server flushes a chunk
/// once the encoded pairs reach this many bytes.
pub const CHUNK_TARGET_BYTES: usize = 256 << 10;

/// Table metadata exchanged by DDL and lookup responses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TableMeta {
    /// Number of parts.
    pub parts: u32,
    /// Whether the table is ubiquitous.
    pub ubiquitous: bool,
    /// Partitioning identity, as reported by server 0.
    pub partitioning_id: u64,
}

impl TableMeta {
    /// Encodes the metadata as a `RESP_OK` payload.
    #[must_use]
    pub fn encode(&self) -> Bytes {
        to_wire(&(self.parts, self.ubiquitous, self.partitioning_id))
    }

    /// Decodes metadata from a `RESP_OK` payload.
    ///
    /// # Errors
    ///
    /// Returns [`KvError::Backend`] on malformed bytes.
    pub fn decode(payload: &[u8]) -> Result<Self, KvError> {
        let (parts, ubiquitous, partitioning_id): (u32, bool, u64) =
            from_wire(payload).map_err(|e| KvError::Backend {
                detail: format!("malformed table metadata: {e}"),
            })?;
        Ok(Self {
            parts,
            ubiquitous,
            partitioning_id,
        })
    }
}

/// Encodes a chunk of key/value pairs for a [`RESP_CHUNK`] frame.
#[must_use]
pub fn encode_pairs(pairs: &[(RoutedKey, Bytes)]) -> Bytes {
    to_wire(&pairs.to_vec())
}

/// Decodes a [`RESP_CHUNK`] payload.
///
/// # Errors
///
/// Returns [`KvError::Backend`] on malformed bytes.
pub fn decode_pairs(payload: &[u8]) -> Result<Vec<(RoutedKey, Bytes)>, KvError> {
    from_wire(payload).map_err(|e| KvError::Backend {
        detail: format!("malformed pair chunk: {e}"),
    })
}

/// Maps an operation name to the `&'static str` the [`KvError::Transient`]
/// variant requires.  Known names map to themselves; anything else becomes
/// `"remote"` rather than leaking a new allocation per error.
#[must_use]
pub fn static_op(op: &str) -> &'static str {
    for known in [
        "get", "put", "delete", "scan", "drain", "len", "clear", "apply", "connect", "send",
        "recv", "run_task", "ddl", "hello", "ping",
    ] {
        if op == known {
            return known;
        }
    }
    "remote"
}

/// Encodes a [`KvError`] for a [`RESP_ERR`] payload.
///
/// The encoding is `(code, s1, s2, n1, n2)` with variant-specific field
/// use; unknown future variants collapse to [`KvError::Backend`].
#[must_use]
pub fn encode_err(err: &KvError) -> Bytes {
    let (code, s1, s2, n1, n2): (u8, String, String, u64, u64) = match err {
        KvError::TableExists { name } => (0, name.clone(), String::new(), 0, 0),
        KvError::NoSuchTable { name } => (1, name.clone(), String::new(), 0, 0),
        KvError::PartOutOfRange { part, parts } => (
            2,
            String::new(),
            String::new(),
            u64::from(*part),
            u64::from(*parts),
        ),
        KvError::TableDropped { name } => (3, name.clone(), String::new(), 0, 0),
        KvError::StoreClosed => (4, String::new(), String::new(), 0, 0),
        KvError::PartFailed { part } => (5, String::new(), String::new(), u64::from(*part), 0),
        KvError::TaskPanicked { part, message } => {
            (6, message.clone(), String::new(), u64::from(*part), 0)
        }
        KvError::Transient { op, part, detail } => {
            (7, (*op).to_owned(), detail.clone(), u64::from(*part), 0)
        }
        KvError::NotCopartitioned { left, right } => (8, left.clone(), right.clone(), 0, 0),
        KvError::UbiquityMismatch { name } => (9, name.clone(), String::new(), 0, 0),
        KvError::NoSuchTask { name } => (10, name.clone(), String::new(), 0, 0),
        KvError::Backend { detail } => (11, detail.clone(), String::new(), 0, 0),
        KvError::WalTailDiscarded {
            table,
            part,
            valid_records,
            discarded_bytes,
        } => (
            12,
            table.clone(),
            String::new(),
            u64::from(*part) | (valid_records << 32),
            *discarded_bytes,
        ),
        KvError::StaleEpoch { seen, current } => {
            (13, String::new(), String::new(), *seen, *current)
        }
        // `KvError` is `#[non_exhaustive]`; future variants degrade to a
        // backend error carrying their display form.
        other => (11, other.to_string(), String::new(), 0, 0),
    };
    to_wire(&(code, s1, s2, n1, n2))
}

/// Decodes a [`RESP_ERR`] payload back into a [`KvError`].
#[must_use]
pub fn decode_err(payload: &[u8]) -> KvError {
    let Ok((code, s1, s2, n1, n2)) = from_wire::<(u8, String, String, u64, u64)>(payload) else {
        return KvError::Backend {
            detail: "malformed error payload".to_owned(),
        };
    };
    // Part numbers travel in the low half of `n1` (WalTailDiscarded packs
    // its record count above them).
    let part = u32::try_from(n1 & u64::from(u32::MAX)).unwrap_or(u32::MAX);
    match code {
        0 => KvError::TableExists { name: s1 },
        1 => KvError::NoSuchTable { name: s1 },
        2 => KvError::PartOutOfRange {
            part,
            parts: u32::try_from(n2 & u64::from(u32::MAX)).unwrap_or(u32::MAX),
        },
        3 => KvError::TableDropped { name: s1 },
        4 => KvError::StoreClosed,
        5 => KvError::PartFailed { part },
        6 => KvError::TaskPanicked { part, message: s1 },
        7 => KvError::Transient {
            op: static_op(&s1),
            part,
            detail: s2,
        },
        8 => KvError::NotCopartitioned {
            left: s1,
            right: s2,
        },
        9 => KvError::UbiquityMismatch { name: s1 },
        10 => KvError::NoSuchTask { name: s1 },
        12 => KvError::WalTailDiscarded {
            table: s1,
            part,
            valid_records: n1 >> 32,
            discarded_bytes: n2,
        },
        // Epochs use the full width of both counters, not the packed
        // part-number halves above.
        13 => KvError::StaleEpoch {
            seen: n1,
            current: n2,
        },
        _ => KvError::Backend { detail: s1 },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_roundtrip() {
        let cases = vec![
            KvError::TableExists { name: "t".into() },
            KvError::NoSuchTable { name: "u".into() },
            KvError::PartOutOfRange { part: 3, parts: 2 },
            KvError::TableDropped { name: "v".into() },
            KvError::StoreClosed,
            KvError::PartFailed { part: 7 },
            KvError::TaskPanicked {
                part: 1,
                message: "boom".into(),
            },
            KvError::Transient {
                op: "get",
                part: 2,
                detail: "socket reset".into(),
            },
            KvError::NotCopartitioned {
                left: "a".into(),
                right: "b".into(),
            },
            KvError::UbiquityMismatch {
                name: "bcast".into(),
            },
            KvError::NoSuchTask { name: "sum".into() },
            KvError::Backend { detail: "x".into() },
            KvError::StaleEpoch {
                seen: u64::from(u32::MAX) + 7,
                current: u64::from(u32::MAX) + 8,
            },
        ];
        for e in cases {
            assert_eq!(decode_err(&encode_err(&e)), e, "{e}");
        }
    }

    #[test]
    fn wal_tail_roundtrips_both_counters() {
        let e = KvError::WalTailDiscarded {
            table: "t".into(),
            part: 5,
            valid_records: 99,
            discarded_bytes: 1234,
        };
        assert_eq!(decode_err(&encode_err(&e)), e);
    }

    #[test]
    fn pairs_roundtrip() {
        let pairs = vec![
            (
                RoutedKey::with_route(1, Bytes::from_static(b"k1")),
                Bytes::from_static(b"v1"),
            ),
            (
                RoutedKey::with_route(2, Bytes::from_static(b"k2")),
                Bytes::new(),
            ),
        ];
        assert_eq!(decode_pairs(&encode_pairs(&pairs)).unwrap(), pairs);
    }

    #[test]
    fn meta_roundtrips() {
        let m = TableMeta {
            parts: 8,
            ubiquitous: false,
            partitioning_id: 42,
        };
        assert_eq!(TableMeta::decode(&m.encode()).unwrap(), m);
    }

    #[test]
    fn unknown_transient_op_maps_to_static() {
        assert_eq!(static_op("get"), "get");
        assert_eq!(static_op("exotic"), "remote");
    }
}
