//! The deterministic network chaos layer, end to end: the same seed
//! produces the same injected-fault trace twice, injected faults surface
//! as bounded [`KvError::Transient`] (never hangs, never poisoned
//! connections), and the pool heals by reconnecting on the next attempt.

use std::time::{Duration, Instant};

use bytes::Bytes;
use ripple_kv::{KvError, KvStore, RoutedKey, Table, TableSpec};
use ripple_store_net::{ChaosCluster, NetConfig, NetFaultPlan, PPM_ALWAYS};

fn key(s: &str) -> RoutedKey {
    RoutedKey::from_body(Bytes::copy_from_slice(s.as_bytes()))
}

/// Runs a fixed, fully sequential workload through a chaos cluster and
/// returns the fault trace.
fn traced_run(seed: u64) -> Vec<ripple_store_net::NetFaultRecord> {
    // Delay-only plan: faults fire (and are recorded) without changing
    // which frames exist, so the frame sequence is identical run to run.
    let plan = NetFaultPlan::seeded(seed).delay(300_000, Duration::from_micros(50));
    let cluster = ChaosCluster::spawn(1, 2, &plan, &NetConfig::default());
    let t = cluster
        .store
        .create_table(TableSpec::new("t").parts(2))
        .unwrap();
    for i in 0..32u32 {
        let k = key(&format!("k{i}"));
        t.put(k.clone(), Bytes::copy_from_slice(&i.to_le_bytes()))
            .unwrap();
        assert!(t.get(&k).unwrap().is_some());
    }
    cluster.trace()
}

/// Chaos criterion from the issue: running the same seeded plan over the
/// same workload twice yields the exact same fault trace.
#[test]
fn same_seed_same_trace() {
    let seed = 0x00C0_FFEE;
    let first = traced_run(seed);
    let second = traced_run(seed);
    assert!(
        !first.is_empty(),
        "plan injected nothing; raise the rate (seed {seed})"
    );
    assert_eq!(
        first, second,
        "chaos trace diverged across identical runs (seed {seed})"
    );
}

/// A black-holed request (frame silently dropped, connection alive) must
/// not hang the client: the per-operation deadline converts silence into
/// a bounded transient error.
#[test]
fn blackholed_request_times_out_as_transient() {
    let seed = 7;
    let plan = NetFaultPlan::seeded(seed)
        .blackhole(PPM_ALWAYS)
        .on_kind(ripple_store_net::proto::REQ_GET);
    let cluster = ChaosCluster::spawn(1, 2, &plan, &NetConfig::default());
    cluster
        .store
        .set_op_deadline(Some(Duration::from_millis(250)));
    let t = cluster
        .store
        .create_table(TableSpec::new("t").parts(2))
        .unwrap();
    t.put(key("a"), Bytes::from_static(b"1")).unwrap();

    let start = Instant::now();
    let err = t.get(&key("a")).expect_err("black-holed read must fail");
    let elapsed = start.elapsed();
    assert!(
        matches!(err, KvError::Transient { .. }),
        "expected transient, got {err} (seed {seed})"
    );
    assert!(
        elapsed < Duration::from_secs(5),
        "deadline did not bound the silent peer: {elapsed:?} (seed {seed})"
    );
    // The pool is not poisoned: operations on unaffected request kinds
    // still succeed over a fresh connection.
    t.put(key("b"), Bytes::from_static(b"2")).unwrap();
    assert!(cluster.store.metrics().retries >= 1 || cluster.store.metrics().reconnects >= 1);
}

/// A corrupted frame (CRC flip) kills the connection server-side; the
/// client sees a transient error, and the next attempt heals over a fresh
/// connection — corrupt frames never poison the pool.
#[test]
fn corrupt_frames_are_transient_and_heal() {
    let seed = 11;
    let plan = NetFaultPlan::seeded(seed)
        .corrupt(PPM_ALWAYS)
        .on_kind(ripple_store_net::proto::REQ_GET);
    let cluster = ChaosCluster::spawn(1, 2, &plan, &NetConfig::default());
    let t = cluster
        .store
        .create_table(TableSpec::new("t").parts(2))
        .unwrap();
    t.put(key("a"), Bytes::from_static(b"1")).unwrap();

    let err = t.get(&key("a")).expect_err("corrupted read must fail");
    assert!(
        matches!(err, KvError::Transient { .. }),
        "expected transient, got {err} (seed {seed})"
    );
    // Writes (a different request kind) keep working, and repeated reads
    // keep failing cleanly rather than wedging the pool.
    t.put(key("c"), Bytes::from_static(b"3")).unwrap();
    let again = t.get(&key("a")).expect_err("still corrupted");
    assert!(
        again.is_transient(),
        "second failure class changed: {again}"
    );
    t.put(key("d"), Bytes::from_static(b"4")).unwrap();
    assert!(
        cluster.store.metrics().reconnects >= 1,
        "healing should have reconnected (seed {seed})"
    );
}

/// A truncated frame is indistinguishable from a mid-frame crash: both
/// sides get severed, the client reports transient, and the pool heals.
#[test]
fn truncated_frames_are_transient_and_heal() {
    let seed = 13;
    let plan = NetFaultPlan::seeded(seed)
        .truncate(PPM_ALWAYS)
        .on_kind(ripple_store_net::proto::REQ_LEN);
    let cluster = ChaosCluster::spawn(1, 2, &plan, &NetConfig::default());
    let t = cluster
        .store
        .create_table(TableSpec::new("t").parts(2))
        .unwrap();
    t.put(key("a"), Bytes::from_static(b"1")).unwrap();

    let err = t.len().expect_err("truncated request must fail");
    assert!(
        err.is_transient(),
        "expected transient, got {err} (seed {seed})"
    );
    // Other request kinds still flow; the pool healed on a fresh
    // connection rather than staying wedged on the severed one.
    t.put(key("b"), Bytes::from_static(b"2")).unwrap();
    assert_eq!(t.get(&key("b")).unwrap(), Some(Bytes::from_static(b"2")));
}
