//! Replicated part servers, end to end: primary promotion on crash, epoch
//! fencing against deposed primaries (zombie defence), heartbeat-driven
//! failure detection, and the drain semantics of a planned stop.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use bytes::Bytes;
use ripple_kv::{KvStore, PartId, RoutedKey, StoreEventSink, Table, TableSpec, TaskRegistry};
use ripple_store_net::{LoopbackCluster, NetConfig};

fn key(s: &str) -> RoutedKey {
    RoutedKey::from_body(Bytes::copy_from_slice(s.as_bytes()))
}

/// Retries `op` through transient faults, the way the engines' retry
/// policy would.
fn with_retry<T>(mut op: impl FnMut() -> Result<T, ripple_kv::KvError>) -> T {
    let mut last = None;
    for _ in 0..10 {
        match op() {
            Ok(v) => return v,
            Err(e) if e.is_transient() => {
                last = Some(e);
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(e) => panic!("non-transient failure: {e}"),
        }
    }
    panic!("still failing after retries: {}", last.unwrap());
}

/// Counts failure-detector events, standing in for a run observer.
#[derive(Default)]
struct Events {
    part_down: AtomicU64,
    failover: AtomicU64,
}

impl StoreEventSink for Events {
    fn on_part_down(&self, _part: u32, _epoch: u64) {
        self.part_down.fetch_add(1, Ordering::SeqCst);
    }
    fn on_failover(&self, _part: u32, _epoch: u64) {
        self.failover.fetch_add(1, Ordering::SeqCst);
    }
}

/// Killing the primary mid-workload promotes the standby: writes made
/// before the crash are readable after it (synchronous replication), new
/// writes land on the promoted replica, and the event sink plus failover
/// counter both record the promotion.
#[test]
fn aborted_primary_fails_over_to_standby() {
    let cluster = LoopbackCluster::spawn_replicated(1, 2, 2, &NetConfig::default());
    let store = &cluster.store;
    let events = Arc::new(Events::default());
    store.set_event_sink(Arc::clone(&events) as Arc<dyn StoreEventSink>);

    let t = store.create_table(TableSpec::new("t").parts(2)).unwrap();
    t.put(key("before"), Bytes::from_static(b"1")).unwrap();
    assert_eq!(store.membership().group_for_part(0).epoch, 1);

    // Crash the primary (replica 0 of the only group) mid-flight.
    cluster.handles[0].abort();

    // The next operations fail transiently at most a few times, then the
    // client promotes the standby and carries on.
    let v = with_retry(|| t.get(&key("before")));
    assert_eq!(v, Some(Bytes::from_static(b"1")), "replicated write lost");
    with_retry(|| t.put(key("after"), Bytes::from_static(b"2")));
    assert_eq!(
        with_retry(|| t.get(&key("after"))),
        Some(Bytes::from_static(b"2"))
    );

    let view = store.membership();
    let group = view.group_for_part(0);
    assert_eq!(group.epoch, 2, "promotion advances the fencing epoch");
    assert_eq!(group.primary, 1, "standby became primary");
    assert!(group.down[0], "crashed member marked down");
    assert!(store.metrics().failovers >= 1, "failover counter missing");
    assert!(events.failover.load(Ordering::SeqCst) >= 1);
    assert!(events.part_down.load(Ordering::SeqCst) >= 1);
}

/// The zombie defence: once any client handshakes at a newer epoch, a
/// client still fenced at the old epoch gets refused (surfacing as a
/// transient fault), observes the newer epoch, and heals by
/// re-handshaking — stale writes never land.
#[test]
fn stale_epoch_clients_are_fenced_then_heal() {
    let cluster = LoopbackCluster::spawn_replicated(1, 2, 2, &NetConfig::default());
    let fresh = &cluster.store;
    // A second, independent client of the same replica group, with its
    // own membership view still at epoch 1.
    let stale = ripple_store_net::NetStore::connect_replicated(vec![vec![
        cluster.handles[0].addr(),
        cluster.handles[1].addr(),
    ]]);
    let t = fresh.create_table(TableSpec::new("t").parts(2)).unwrap();
    let t_stale = stale.lookup_table("t").unwrap();

    // Establish a fenced connection for the stale client at epoch 1.
    t_stale.put(key("a"), Bytes::from_static(b"1")).unwrap();

    // The fresh client moves the group to epoch 2 and handshakes at it,
    // raising the server-side watermark.
    let new_epoch = fresh.advance_epoch(0);
    assert_eq!(new_epoch, 2);
    t.put(key("b"), Bytes::from_static(b"2")).unwrap();

    // The stale client's fenced connection is refused; the refusal is
    // transient (it kills the connection), and the retry re-handshakes at
    // the observed epoch and succeeds.
    let err = t_stale
        .put(key("c"), Bytes::from_static(b"3"))
        .expect_err("stale-epoch write must be refused");
    assert!(
        err.is_transient(),
        "fencing should surface transiently: {err}"
    );
    with_retry(|| t_stale.put(key("c"), Bytes::from_static(b"3")));
    assert_eq!(stale.membership().group_for_part(0).epoch, 2);
    assert!(stale.metrics().retries >= 1, "fence retry not counted");
}

/// The heartbeat failure detector notices a dead primary without any
/// foreground traffic: after the grace period the group promotes on its
/// own, so the next operation goes straight to the standby.
#[test]
fn heartbeat_detects_dead_primary_without_traffic() {
    let config = NetConfig {
        heartbeat_interval: Some(Duration::from_millis(20)),
        heartbeat_grace: 3,
        ..NetConfig::default()
    };
    let cluster = LoopbackCluster::spawn_replicated(1, 2, 2, &config);
    let store = &cluster.store;
    let t = store.create_table(TableSpec::new("t").parts(2)).unwrap();
    t.put(key("a"), Bytes::from_static(b"1")).unwrap();

    cluster.handles[0].abort();

    // No foreground requests: only the heartbeat thread can notice.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while store.membership().group_for_part(0).epoch < 2 {
        assert!(
            std::time::Instant::now() < deadline,
            "heartbeat never promoted the standby"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(store.metrics().failovers >= 1);
    assert_eq!(
        with_retry(|| t.get(&key("a"))),
        Some(Bytes::from_static(b"1"))
    );
}

/// A planned stop drains in-flight requests before severing: a slow task
/// dispatched before `stop_with_grace` still gets its response, unlike
/// the aborted-server case where it surfaces transiently.
#[test]
fn graceful_stop_drains_inflight_requests() {
    let registry = TaskRegistry::default();
    registry.register("slow-echo", |_view, arg: Bytes| {
        std::thread::sleep(Duration::from_millis(300));
        Ok(arg)
    });
    let mut cluster = LoopbackCluster::spawn_with_registry(1, 2, &registry);
    let t = cluster
        .store
        .create_table(TableSpec::new("t").parts(2))
        .unwrap();

    let handle =
        cluster
            .store
            .run_named_at(&t, PartId(0), "slow-echo", Bytes::from_static(b"ping"));
    // Let the request reach the server before stopping.
    std::thread::sleep(Duration::from_millis(50));
    assert_eq!(cluster.handles[0].inflight(), 1);
    cluster.handles[0].stop_with_grace(Duration::from_secs(5));
    let echoed = handle.join().unwrap().expect("drained request answered");
    assert_eq!(echoed, Bytes::from_static(b"ping"));
}
