//! Differential testing: a [`NetStore`] over a loopback cluster must be
//! observationally equivalent to the [`SimpleStore`] oracle for any
//! sequence of table and part-view operations.
//!
//! Both stores get the same table layout (a co-partitioned pair, an
//! independently partitioned table, and a ubiquitous table) and the same
//! random op sequence; every operation's result — values, lengths,
//! booleans, *and errors* — must match, and so must the final contents of
//! every table.  Enumeration order is unspecified, so scans and drains
//! compare as sorted sets and drains always run to completion (an early
//! stop consumes an arbitrary subset, which would legitimately diverge).

use std::collections::BTreeMap;

use bytes::Bytes;
use proptest::prelude::*;
use ripple_kv::{KvError, KvStore, PartId, RoutedKey, ScanControl, Table, TableSpec};
use ripple_store_net::LoopbackCluster;
use ripple_store_simple::SimpleStore;

const PARTS: u32 = 4;
const TABLES: [&str; 4] = ["a", "b", "other", "bcast"];

#[derive(Debug, Clone)]
enum Op {
    Put(usize, u8, u8),
    Get(usize, u8),
    Delete(usize, u8),
    Len(usize),
    Clear(usize),
    ViewGet(u32, usize, u8),
    ViewPut(u32, usize, u8, u8),
    ViewDelete(u32, usize, u8),
    ViewLen(u32, usize),
    ViewScan(u32, usize),
    ViewDrain(u32, usize),
}

fn arb_op() -> impl Strategy<Value = Op> {
    let table = 0usize..TABLES.len();
    let part = 0u32..PARTS;
    prop_oneof![
        (table.clone(), any::<u8>(), any::<u8>()).prop_map(|(t, k, v)| Op::Put(t, k, v)),
        (table.clone(), any::<u8>()).prop_map(|(t, k)| Op::Get(t, k)),
        (table.clone(), any::<u8>()).prop_map(|(t, k)| Op::Delete(t, k)),
        table.clone().prop_map(Op::Len),
        table.clone().prop_map(Op::Clear),
        (part.clone(), table.clone(), any::<u8>()).prop_map(|(p, t, k)| Op::ViewGet(p, t, k)),
        (part.clone(), table.clone(), any::<u8>(), any::<u8>())
            .prop_map(|(p, t, k, v)| Op::ViewPut(p, t, k, v)),
        (part.clone(), table.clone(), any::<u8>()).prop_map(|(p, t, k)| Op::ViewDelete(p, t, k)),
        (part.clone(), table.clone()).prop_map(|(p, t)| Op::ViewLen(p, t)),
        (part.clone(), table.clone()).prop_map(|(p, t)| Op::ViewScan(p, t)),
        (part, table).prop_map(|(p, t)| Op::ViewDrain(p, t)),
    ]
}

fn key(k: u8) -> RoutedKey {
    RoutedKey::from_body(Bytes::copy_from_slice(format!("key-{k}").as_bytes()))
}

fn value(v: u8) -> Bytes {
    Bytes::copy_from_slice(format!("value-{v}").as_bytes())
}

/// Creates the fixed table layout on `store`: `a` and `b` co-partitioned,
/// `other` independently partitioned, `bcast` ubiquitous.  Returns the
/// handle of `a`, the reference table all views anchor to.
fn layout<S: KvStore>(store: &S) -> S::Table {
    let a = store
        .create_table(TableSpec::new("a").parts(PARTS))
        .unwrap();
    store.create_table_like("b", &a).unwrap();
    store
        .create_table(TableSpec::new("other").parts(PARTS))
        .unwrap();
    store
        .create_table(TableSpec::new("bcast").ubiquitous())
        .unwrap();
    a
}

/// Normalizes a result for comparison: success payload or the error.
type Outcome<T> = Result<T, KvError>;

fn scan_sorted<S: KvStore>(
    store: &S,
    reference: &S::Table,
    part: u32,
    table: &str,
) -> Outcome<BTreeMap<Vec<u8>, Vec<u8>>> {
    let table = table.to_owned();
    store
        .run_at(reference, PartId(part), move |view| {
            let mut out = BTreeMap::new();
            view.scan(&table, &mut |k, v| {
                out.insert(k.body().to_vec(), v.to_vec());
                ScanControl::Continue
            })?;
            Ok(out)
        })
        .join()
        .unwrap()
}

fn drain_sorted<S: KvStore>(
    store: &S,
    reference: &S::Table,
    part: u32,
    table: &str,
) -> Outcome<BTreeMap<Vec<u8>, Vec<u8>>> {
    let table = table.to_owned();
    store
        .run_at(reference, PartId(part), move |view| {
            let mut out = BTreeMap::new();
            view.drain(&table, &mut |k, v| {
                out.insert(k.body().to_vec(), v.to_vec());
                ScanControl::Continue
            })?;
            Ok(out)
        })
        .join()
        .unwrap()
}

fn view_op<S: KvStore, R: Send + 'static>(
    store: &S,
    reference: &S::Table,
    part: u32,
    f: impl FnOnce(&dyn ripple_kv::PartView) -> R + Send + 'static,
) -> R {
    store.run_at(reference, PartId(part), f).join().unwrap()
}

/// Applies `op` to `store` (views anchored at `reference`) and returns a
/// printable outcome for equality comparison.
fn apply<S: KvStore>(store: &S, reference: &S::Table, op: &Op) -> String {
    match *op {
        Op::Put(t, k, v) => {
            let r = store
                .lookup_table(TABLES[t])
                .and_then(|t| t.put(key(k), value(v)));
            format!("{r:?}")
        }
        Op::Get(t, k) => {
            let r = store.lookup_table(TABLES[t]).and_then(|t| t.get(&key(k)));
            format!("{r:?}")
        }
        Op::Delete(t, k) => {
            let r = store
                .lookup_table(TABLES[t])
                .and_then(|t| t.delete(&key(k)));
            format!("{r:?}")
        }
        Op::Len(t) => {
            let r = store.lookup_table(TABLES[t]).and_then(|t| t.len());
            format!("{r:?}")
        }
        Op::Clear(t) => {
            let r = store.lookup_table(TABLES[t]).and_then(|t| t.clear());
            format!("{r:?}")
        }
        Op::ViewGet(p, t, k) => {
            let name = TABLES[t];
            let r = view_op(store, reference, p, move |view| view.get(name, &key(k)));
            format!("{r:?}")
        }
        Op::ViewPut(part, t, k, v) => {
            let name = TABLES[t];
            let result = view_op(store, reference, part, move |view| {
                view.put(name, key(k), value(v))
            });
            format!("{result:?}")
        }
        Op::ViewDelete(p, t, k) => {
            let name = TABLES[t];
            let r = view_op(store, reference, p, move |view| view.delete(name, &key(k)));
            format!("{r:?}")
        }
        Op::ViewLen(p, t) => {
            let name = TABLES[t];
            let r = view_op(store, reference, p, move |view| view.len(name));
            format!("{r:?}")
        }
        Op::ViewScan(p, t) => format!("{:?}", scan_sorted(store, reference, p, TABLES[t])),
        Op::ViewDrain(p, t) => format!("{:?}", drain_sorted(store, reference, p, TABLES[t])),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn net_store_matches_simple_oracle(ops in proptest::collection::vec(arb_op(), 1..40)) {
        let cluster = LoopbackCluster::spawn(2, PARTS);
        let oracle = SimpleStore::new(PARTS);
        let net_ref = layout(&cluster.store);
        let simple_ref = layout(&oracle);

        for (i, op) in ops.iter().enumerate() {
            let net = apply(&cluster.store, &net_ref, op);
            let simple = apply(&oracle, &simple_ref, op);
            prop_assert_eq!(&net, &simple, "op #{} {:?} diverged", i, op);
        }

        // Final state: every part of every table matches as a sorted map.
        for table in TABLES {
            for part in 0..PARTS {
                let net = format!("{:?}", scan_sorted(&cluster.store, &net_ref, part, table));
                let simple = format!("{:?}", scan_sorted(&oracle, &simple_ref, part, table));
                prop_assert_eq!(&net, &simple, "final state of {}/part {}", table, part);
            }
        }
    }
}
