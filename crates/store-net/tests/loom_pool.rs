//! Loom models of the connection pool's response-dispatch table.
//!
//! Run with `RUSTFLAGS="--cfg loom" cargo test -p ripple-store-net --test
//! loom_pool`.  Compiles to nothing in ordinary builds.
//!
//! The property under check is the anti-stranding invariant documented on
//! [`ripple_store_net::dispatch::Dispatch`]: a request racing the reader
//! thread's connection-death declaration is either *refused at
//! registration* (the writer fails it fast) or *drained by the kill* (the
//! reader fails it) — under no interleaving does a registered completer
//! survive unanswered.
#![cfg(loom)]

use loom::sync::atomic::{AtomicUsize, Ordering};
use loom::sync::Arc;
use ripple_store_net::dispatch::Dispatch;

/// One writer registers while the reader kills: the completer must end up
/// completed by exactly one side.
#[test]
fn racing_register_and_kill_never_strand_a_request() {
    loom::model(|| {
        let dispatch: Arc<Dispatch<Arc<AtomicUsize>>> = Arc::new(Dispatch::new());
        let completions = Arc::new(AtomicUsize::new(0));

        let writer = {
            let dispatch = Arc::clone(&dispatch);
            let completions = Arc::clone(&completions);
            loom::thread::spawn(move || {
                let completer = Arc::clone(&completions);
                if dispatch.register(1, completer) {
                    true // registered: someone must complete it
                } else {
                    // Refused: the writer side fails the request itself.
                    completions.fetch_add(1, Ordering::SeqCst);
                    false
                }
            })
        };
        let reader = {
            let dispatch = Arc::clone(&dispatch);
            loom::thread::spawn(move || {
                for (_, completer) in dispatch.kill() {
                    completer.fetch_add(1, Ordering::SeqCst);
                }
            })
        };

        let registered = writer.join().unwrap();
        reader.join().unwrap();

        if registered {
            // The registration won the race; the kill may have missed it
            // (kill ran first), in which case a later terminal frame or a
            // second kill must still find it.
            for (_, completer) in dispatch.kill() {
                completer.fetch_add(1, Ordering::SeqCst);
            }
        }
        assert_eq!(
            completions.load(Ordering::SeqCst),
            1,
            "the request must be completed exactly once, by either side"
        );
    });
}

/// Death is permanent: once any thread observes a refusal, every later
/// registration is refused too, so a reconnect (a fresh `Dispatch`) is the
/// only way forward — there is no revival window that could strand a
/// request registered "in between".
#[test]
fn death_is_monotonic_across_threads() {
    loom::model(|| {
        let dispatch: Arc<Dispatch<usize>> = Arc::new(Dispatch::new());

        let killer = {
            let dispatch = Arc::clone(&dispatch);
            loom::thread::spawn(move || dispatch.kill().len())
        };
        let probe = {
            let dispatch = Arc::clone(&dispatch);
            loom::thread::spawn(move || {
                let first = dispatch.register(1, 10);
                let second = dispatch.register(2, 20);
                (first, second)
            })
        };

        let drained_by_killer = killer.join().unwrap();
        let (first, second) = probe.join().unwrap();
        assert!(
            first || !second,
            "a refusal must never be followed by an acceptance"
        );
        // Every accepted registration was drained exactly once — by the
        // racing kill or by this final one.  Nothing leaks, nothing doubles.
        let leftover = dispatch.kill();
        let accepted = usize::from(first) + usize::from(second);
        assert_eq!(drained_by_killer + leftover.len(), accepted);
    });
}
