//! Conservation: on a recovery-free profiled run, per-step profiles must
//! tile the run exactly — Σ step counters equals the run-level
//! [`RunMetrics`] work counters, and Σ per-step store deltas equals the
//! run-level store delta, field by field, network counters included.
//!
//! This is the invariant the BSP cost model stands on: `CostModel` prices
//! a run by summing per-step `w`/`h`/`l` terms, which is only meaningful
//! if the steps account for all the work and all the traffic.  The same
//! harness runs against the in-process store and the networked loopback
//! cluster; the disk backend's copy lives in `ripple-store-disk`'s tests.

use std::sync::Arc;

use ripple_core::{
    useful_h_bytes, CostModel, FnLoader, JobRunner, LoadSink, RunOptions, RunOutcome, SimpleJob,
};
use ripple_kv::{KvStore, StoreMetrics};
use ripple_store_mem::MemStore;
use ripple_store_net::LoopbackCluster;

const KEYS: u32 = 9;

type RingRelay = SimpleJob<u32, u32, u32>;

/// Every key forwards a decrementing hop count to the next key each step,
/// so every step has cross-part messages, state reads, and state writes.
fn ring_relay(name: &str) -> RingRelay {
    SimpleJob::<u32, u32, u32>::builder(name)
        .compute(|ctx| {
            let me = *ctx.key();
            let seen = ctx.read_state(0)?.unwrap_or(0);
            let hops = ctx.messages().iter().copied().max().unwrap_or(0);
            ctx.write_state(0, &(seen + 1))?;
            if hops > 0 {
                ctx.send((me + 1) % KEYS, hops - 1);
            }
            Ok(false)
        })
        .build()
}

fn run_profiled<S: KvStore>(store: S, name: &str) -> RunOutcome {
    let mut runner = JobRunner::new(store);
    runner.profile(true);
    runner
        .launch(
            Arc::new(ring_relay(name)),
            RunOptions::new().loaders(vec![Box::new(FnLoader::new(
                |sink: &mut dyn LoadSink<RingRelay>| {
                    for k in 0..KEYS {
                        sink.message(k, 5)?;
                    }
                    Ok(())
                },
            ))]),
        )
        .unwrap()
}

/// Σ step counters == run counters and Σ step store deltas == run store
/// delta, every field.  Shared by the mem and net variants below.
fn assert_conserves(outcome: &RunOutcome) {
    let m = &outcome.metrics;
    assert_eq!(m.recoveries, 0, "conservation only holds recovery-free");
    let profiles = outcome.profiles.as_deref().expect("profiling was on");
    assert_eq!(profiles.len(), outcome.steps as usize);

    let count = |f: fn(&ripple_core::StepProfile) -> u64| profiles.iter().map(f).sum::<u64>();
    assert_eq!(count(|p| p.counters.invocations), m.invocations);
    assert_eq!(count(|p| p.counters.messages_sent), m.messages_sent);
    assert_eq!(count(|p| p.counters.state_reads), m.state_reads);
    assert_eq!(count(|p| p.counters.state_writes), m.state_writes);
    assert_eq!(count(|p| p.counters.state_deletes), m.state_deletes);
    assert_eq!(count(|p| p.counters.creates), m.creates);
    assert_eq!(count(|p| p.counters.direct_outputs), m.direct_outputs);

    // Store deltas telescope: each step's interval ends where the next
    // begins and the first begins at the run baseline, so the sum is the
    // run-level delta exactly — including the network counters, which is
    // what makes the per-step h-relation trustworthy.
    let sum = profiles.iter().fold(StoreMetrics::default(), |mut acc, p| {
        acc.local_ops += p.store.local_ops;
        acc.remote_ops += p.store.remote_ops;
        acc.bytes_marshalled += p.store.bytes_marshalled;
        acc.tasks_dispatched += p.store.tasks_dispatched;
        acc.enumerations += p.store.enumerations;
        acc.wal_bytes += p.store.wal_bytes;
        acc.fsyncs += p.store.fsyncs;
        acc.replayed_records += p.store.replayed_records;
        acc.rpcs += p.store.rpcs;
        acc.net_bytes_in += p.store.net_bytes_in;
        acc.net_bytes_out += p.store.net_bytes_out;
        acc.retries += p.store.retries;
        acc.retry_bytes += p.store.retry_bytes;
        acc.reconnects += p.store.reconnects;
        acc.failovers += p.store.failovers;
        acc.rpc_latency.merge(&p.store.rpc_latency);
        acc
    });
    assert_eq!(sum, m.store, "per-step store deltas must tile the run");

    // The derived cost model's h totals are the same sums, so they are
    // conserved by construction — pin that down too.
    let cost = CostModel::derive(profiles);
    assert_eq!(
        cost.total_h_bytes(),
        profiles
            .iter()
            .map(|p| useful_h_bytes(&p.store))
            .sum::<u64>()
    );
}

#[test]
fn mem_run_conserves_counters_and_store_deltas() {
    let outcome = run_profiled(MemStore::builder().default_parts(3).build(), "ring_mem");
    assert_conserves(&outcome);
    assert!(outcome.steps >= 5, "the relay runs one step per hop");
    assert_eq!(outcome.metrics.store.rpcs, 0, "mem store never does RPC");
}

#[test]
fn net_run_conserves_counters_and_store_deltas() {
    let cluster = LoopbackCluster::spawn(2, 4);
    let outcome = run_profiled(cluster.store.clone(), "ring_net");
    assert_conserves(&outcome);
    let m = &outcome.metrics.store;
    assert!(m.rpcs > 0, "the loopback cluster serves over RPC");
    assert!(m.net_bytes_out > 0 && m.net_bytes_in > 0);
    assert_eq!(m.retry_bytes, 0, "no chaos, so no retry traffic");
    // On a networked backend the useful h-relation is wire bytes.
    let profiles = outcome.profiles.as_deref().unwrap();
    let cost = CostModel::derive(profiles);
    assert_eq!(
        cost.total_h_bytes(),
        m.net_bytes_in + m.net_bytes_out,
        "useful h-bytes on a clean run are exactly the wire bytes"
    );
}
