//! End-to-end exercises of the networked store over in-process loopback
//! clusters: DDL, point operations, enumeration, mobile code, and the
//! engine running a real job against remote parts.

use std::sync::Arc;

use bytes::Bytes;
use ripple_core::{FnLoader, JobRunner, LoadSink, RunOptions, SimpleJob};
use ripple_kv::{KvError, KvStore, PartId, RoutedKey, ScanControl, Table, TableSpec, TaskRegistry};
use ripple_store_mem::MemStore;
use ripple_store_net::LoopbackCluster;

fn key(s: &str) -> RoutedKey {
    RoutedKey::from_body(Bytes::copy_from_slice(s.as_bytes()))
}

fn val(s: &str) -> Bytes {
    Bytes::copy_from_slice(s.as_bytes())
}

#[test]
fn ddl_and_point_ops() {
    let cluster = LoopbackCluster::spawn(2, 4);
    let store = &cluster.store;

    let t = store.create_table(TableSpec::new("t").parts(4)).unwrap();
    assert_eq!(t.part_count(), 4);
    assert!(!t.is_ubiquitous());

    assert_eq!(t.put(key("a"), val("1")).unwrap(), None);
    assert_eq!(t.put(key("a"), val("2")).unwrap(), Some(val("1")));
    assert_eq!(t.get(&key("a")).unwrap(), Some(val("2")));
    assert_eq!(t.get(&key("missing")).unwrap(), None);
    for i in 0..32 {
        t.put(key(&format!("k{i}")), val(&format!("v{i}"))).unwrap();
    }
    assert_eq!(t.len().unwrap(), 33);
    assert!(t.delete(&key("a")).unwrap());
    assert!(!t.delete(&key("a")).unwrap());
    assert_eq!(t.len().unwrap(), 32);
    t.clear().unwrap();
    assert_eq!(t.len().unwrap(), 0);
    assert!(t.is_empty().unwrap());

    let again = store.lookup_table("t").unwrap();
    assert_eq!(again.part_count(), 4);
    assert_eq!(again.partitioning_id(), t.partitioning_id());
    assert!(store.table_names().contains(&"t".to_owned()));

    store.drop_table("t").unwrap();
    assert!(matches!(
        store.lookup_table("t"),
        Err(KvError::NoSuchTable { .. })
    ));
    assert!(store.create_table(TableSpec::new("u").parts(2)).is_ok());
    assert!(matches!(
        store.create_table(TableSpec::new("u").parts(2)),
        Err(KvError::TableExists { .. })
    ));
}

#[test]
fn copartitioning_and_ubiquity_rules() {
    let cluster = LoopbackCluster::spawn(2, 4);
    let store = &cluster.store;

    let a = store.create_table(TableSpec::new("a").parts(4)).unwrap();
    let b = store.create_table_like("b", &a).unwrap();
    let other = store
        .create_table(TableSpec::new("other").parts(4))
        .unwrap();
    let bcast = store
        .create_table(TableSpec::new("bcast").ubiquitous())
        .unwrap();
    assert_eq!(a.partitioning_id(), b.partitioning_id());
    assert_ne!(a.partitioning_id(), other.partitioning_id());
    assert!(bcast.is_ubiquitous());
    assert_eq!(bcast.part_count(), 1);

    bcast.put(key("cfg"), val("42")).unwrap();

    let results = store
        .run_at(&a, PartId(1), |view| {
            let copart = view.put("b", key("x"), val("y")).map(|_| ());
            let non_copart = view.get("other", &key("x")).map(|_| ());
            let ubiq_read = view.get("bcast", &key("cfg"));
            let ubiq_write = view.put("bcast", key("cfg"), val("7")).map(|_| ());
            let missing = view.get("nope", &key("x")).map(|_| ());
            (copart, non_copart, ubiq_read, ubiq_write, missing)
        })
        .join()
        .unwrap();

    assert_eq!(results.0, Ok(()));
    assert!(matches!(results.1, Err(KvError::NotCopartitioned { .. })));
    assert_eq!(results.2, Ok(Some(val("42"))));
    assert!(matches!(results.3, Err(KvError::UbiquityMismatch { .. })));
    assert!(matches!(results.4, Err(KvError::NoSuchTable { .. })));

    assert_eq!(b.get(&key("x")).unwrap(), Some(val("y")));
}

#[test]
fn scan_and_drain_are_part_scoped() {
    let cluster = LoopbackCluster::spawn(2, 4);
    let store = &cluster.store;
    let t = store.create_table(TableSpec::new("t").parts(4)).unwrap();

    let total = 64usize;
    for i in 0..total {
        t.put(key(&format!("k{i}")), val(&format!("v{i}"))).unwrap();
    }

    // Per-part scans partition the key space exactly.
    let mut seen = 0usize;
    for p in 0..4 {
        let n = store
            .run_at(&t, PartId(p), |view| {
                let mut count = 0usize;
                let mut in_part = true;
                view.scan("t", &mut |k, _| {
                    in_part &= k.part_for(4) == view.part();
                    count += 1;
                    ScanControl::Continue
                })
                .unwrap();
                assert!(in_part, "scan leaked keys from other parts");
                assert_eq!(view.len("t").unwrap(), count);
                count
            })
            .join()
            .unwrap();
        seen += n;
    }
    assert_eq!(seen, total);

    // Drain with early stop: consumed pairs are gone, the rest stay.
    let part0 = store
        .run_at(&t, PartId(0), |view| view.len("t").unwrap())
        .join()
        .unwrap();
    assert!(part0 > 2, "need a few keys in part 0 for the early stop");
    store
        .run_at(&t, PartId(0), |view| {
            let mut taken = 0;
            view.drain("t", &mut |_, _| {
                taken += 1;
                if taken == 2 {
                    ScanControl::Stop
                } else {
                    ScanControl::Continue
                }
            })
            .unwrap();
        })
        .join()
        .unwrap();
    let left = store
        .run_at(&t, PartId(0), |view| view.len("t").unwrap())
        .join()
        .unwrap();
    assert_eq!(left, part0 - 2);
    assert_eq!(t.len().unwrap(), total - 2);

    // Full drain empties only the addressed part.
    store
        .run_at(&t, PartId(0), |view| {
            view.drain("t", &mut |_, _| ScanControl::Continue).unwrap();
        })
        .join()
        .unwrap();
    assert_eq!(t.len().unwrap(), total - part0);
}

#[test]
fn named_tasks_run_on_the_owning_server() {
    let registry = TaskRegistry::default();
    registry.register("count", |view, arg: Bytes| {
        let table = String::from_utf8(arg.to_vec()).expect("utf8 table name");
        let n = view.len(&table)? as u64;
        Ok(Bytes::copy_from_slice(&n.to_le_bytes()))
    });
    let cluster = LoopbackCluster::spawn_with_registry(2, 4, &registry);
    let store = &cluster.store;
    let t = store.create_table(TableSpec::new("t").parts(4)).unwrap();
    for i in 0..40 {
        t.put(key(&format!("k{i}")), val("x")).unwrap();
    }

    let mut total = 0u64;
    for p in 0..4 {
        let out = store
            .run_named_at(&t, PartId(p), "count", Bytes::from_static(b"t"))
            .join()
            .unwrap()
            .unwrap();
        total += u64::from_le_bytes(out.as_ref().try_into().unwrap());
    }
    assert_eq!(total, 40);

    let missing = store
        .run_named_at(&t, PartId(0), "no-such", Bytes::new())
        .join()
        .unwrap();
    assert!(matches!(missing, Err(KvError::NoSuchTask { .. })));
}

#[test]
fn metrics_count_network_traffic() {
    let cluster = LoopbackCluster::spawn(2, 4);
    let store = &cluster.store;
    let t = store.create_table(TableSpec::new("t").parts(4)).unwrap();
    for i in 0..16 {
        t.put(key(&format!("k{i}")), val(&format!("v{i}"))).unwrap();
    }
    store
        .run_at(&t, PartId(0), |view| {
            view.scan("t", &mut |_, _| ScanControl::Continue).unwrap();
        })
        .join()
        .unwrap();

    let m = store.metrics();
    assert!(m.rpcs > 0, "no rpcs counted: {m:?}");
    assert!(m.net_bytes_in > 0);
    assert!(m.net_bytes_out > 0);
    assert!(m.remote_ops >= 16);
    assert_eq!(m.enumerations, 1);
    assert!(m.tasks_dispatched >= 1);
    assert!(m.rpc_latency.total() > 0, "no latencies observed");
    assert!(m.rpc_latency.quantile_upper_us(0.99) >= 1);
}

type CountDown = SimpleJob<u32, u32, u32>;

fn countdown(name: &str) -> CountDown {
    SimpleJob::<u32, u32, u32>::builder(name)
        .compute(|ctx| {
            let v = ctx.read_state(0)?.unwrap_or(0);
            ctx.write_state(0, &v.saturating_sub(1))?;
            Ok(v > 1)
        })
        .build()
}

fn seed(n: u32) -> Box<dyn ripple_core::Loader<CountDown>> {
    Box::new(FnLoader::new(move |sink: &mut dyn LoadSink<CountDown>| {
        for k in 0..8u32 {
            sink.state(0, k, n)?;
            sink.enable(k)?;
        }
        Ok(())
    }))
}

#[test]
fn engine_runs_jobs_against_remote_parts() {
    let cluster = LoopbackCluster::spawn(2, 4);
    let remote = JobRunner::new(cluster.store.clone())
        .launch(
            Arc::new(countdown("cd")),
            RunOptions::new().loaders(vec![seed(5)]),
        )
        .unwrap();
    let local = JobRunner::new(MemStore::builder().default_parts(4).build())
        .launch(
            Arc::new(countdown("cd")),
            RunOptions::new().loaders(vec![seed(5)]),
        )
        .unwrap();
    assert_eq!(remote.steps, local.steps);
    assert_eq!(remote.metrics.invocations, local.metrics.invocations);
    assert!(cluster.store.metrics().rpcs > 0);
}
