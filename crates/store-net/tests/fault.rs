//! Fault injection: severing connections surfaces [`KvError::Transient`]
//! — the class both engines retry — and the store heals on the next
//! attempt by reconnecting lazily.

use std::sync::Arc;
use std::time::Duration;

use bytes::Bytes;
use ripple_core::{FnLoader, JobRunner, LoadSink, RetryPolicy, RunOptions, SimpleJob};
use ripple_kv::{KvError, KvStore, PartId, RoutedKey, Table, TableSpec, TaskRegistry};
use ripple_store_net::LoopbackCluster;

fn key(s: &str) -> RoutedKey {
    RoutedKey::from_body(Bytes::copy_from_slice(s.as_bytes()))
}

/// An in-flight request whose connection is severed fails transiently;
/// reissuing the same operation succeeds over a fresh connection.
#[test]
fn severed_in_flight_request_is_transient_and_retryable() {
    let registry = TaskRegistry::default();
    registry.register("slow-echo", |_view, arg: Bytes| {
        std::thread::sleep(Duration::from_millis(400));
        Ok(arg)
    });
    let cluster = LoopbackCluster::spawn_with_registry(2, 4, &registry);
    let store = &cluster.store;
    let t = store.create_table(TableSpec::new("t").parts(4)).unwrap();
    t.put(key("a"), Bytes::from_static(b"1")).unwrap();

    // Dispatch a slow task, then cut every connection while it is in
    // flight: the handle must resolve to a transient error.
    let handle = store.run_named_at(&t, PartId(1), "slow-echo", Bytes::from_static(b"ping"));
    std::thread::sleep(Duration::from_millis(50));
    store.sever_connections();
    let result = handle.join().unwrap();
    let err = result.expect_err("severed request should fail");
    assert!(
        matches!(err, KvError::Transient { .. }),
        "expected a transient error, got {err}"
    );
    assert!(err.is_transient(), "retry policies must classify it");

    // The retry: the same dispatch on a fresh attempt succeeds, as do
    // ordinary data operations — the pool reconnected underneath.
    let healed = store
        .run_named_at(&t, PartId(1), "slow-echo", Bytes::from_static(b"ping"))
        .join()
        .unwrap()
        .unwrap();
    assert_eq!(healed, Bytes::from_static(b"ping"));
    assert_eq!(t.get(&key("a")).unwrap(), Some(Bytes::from_static(b"1")));
}

type CountDown = SimpleJob<u32, u32, u32>;

/// A job whose compute severs every connection at a fixed invocation
/// still completes: the engine's retry policy re-issues the failed store
/// operations over fresh connections.
#[test]
fn engine_retry_heals_a_mid_step_sever() {
    let cluster = LoopbackCluster::spawn(2, 4);
    let store = cluster.store.clone();
    let sever_store = store.clone();
    let fired = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let fire = Arc::clone(&fired);

    let job = SimpleJob::<u32, u32, u32>::builder("sever")
        .compute(move |ctx| {
            let v = ctx.read_state(0)?.unwrap_or(0);
            if v == 3 && !fire.swap(true, std::sync::atomic::Ordering::SeqCst) {
                // Mid-step: other parts have requests in flight right now.
                sever_store.sever_connections();
            }
            ctx.write_state(0, &v.saturating_sub(1))?;
            Ok(v > 1)
        })
        .build();
    let loader: Box<dyn ripple_core::Loader<CountDown>> =
        Box::new(FnLoader::new(move |sink: &mut dyn LoadSink<CountDown>| {
            for k in 0..8u32 {
                sink.state(0, k, 6)?;
                sink.enable(k)?;
            }
            Ok(())
        }));

    let outcome = JobRunner::new(store.clone())
        .retry_policy(
            RetryPolicy::default()
                .max_attempts(8)
                .base_delay(Duration::from_millis(5)),
        )
        .launch(Arc::new(job), RunOptions::new().loaders(vec![loader]))
        .unwrap();
    assert_eq!(outcome.steps, 6);
    assert!(fired.load(std::sync::atomic::Ordering::SeqCst));

    // The run's data survived the sever: all eight cells counted down.
    let state = store.lookup_table("sever").unwrap();
    assert!(state.len().unwrap() > 0);
}
