//! Fair scheduling of part-tasks from concurrent jobs over a shared
//! worker pool.
//!
//! The paper's runtime multiplexes many jobs over one resident set of
//! part servers; when two jobs both have a phase's worth of part-tasks
//! ready, *something* must decide whose tasks occupy the workers.  A
//! plain semaphore ([`SemaphoreGate`](ripple_core::SemaphoreGate)) is
//! FIFO-ish per the OS's whim and lets a wide job starve a narrow one.
//! [`FairScheduler`] instead grants compute slots round-robin *across
//! jobs*: each grant advances a cursor past the granted job, so among
//! jobs with waiting tasks, slots alternate — a 64-part job and a 4-part
//! job interleave instead of queueing serially.
//!
//! Each job's tasks reach the scheduler through a [`JobGate`] (the job's
//! [`TaskGate`], installed on its runner), which also meters per-job
//! accounting: how many slots the job was granted and how long its tasks
//! waited for them.  The wait happens *before* the engine's timed span,
//! so compute walls in [`StepProfile`](ripple_core::StepProfile)s price
//! real work and queueing shows up here instead.

use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use ripple_core::TaskGate;

/// Bound on the retained grant-order log; beyond it grants still happen
/// but are no longer recorded (the log exists for tests and debugging).
const GRANT_LOG_CAP: usize = 1 << 20;

#[derive(Debug)]
struct Slot {
    id: u64,
    waiting: usize,
    granted: u64,
    wait: Duration,
    active: bool,
}

#[derive(Debug)]
struct Inner {
    free: usize,
    slots: Vec<Slot>,
    cursor: usize,
    grant_log: Vec<u64>,
    next_id: u64,
}

/// Round-robin compute-slot scheduler shared by all jobs of a server.
#[derive(Debug)]
pub struct FairScheduler {
    workers: usize,
    inner: Mutex<Inner>,
    cv: Condvar,
}

/// One job's accounting snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SchedAccount {
    /// The job's scheduler id.
    pub job: u64,
    /// Compute slots granted to the job so far.
    pub granted: u64,
    /// Total time the job's tasks spent waiting for a slot.
    pub wait: Duration,
}

impl FairScheduler {
    /// A scheduler with `workers` compute slots.
    ///
    /// # Panics
    ///
    /// Panics if `workers` is zero — a server with no workers can run
    /// nothing.
    pub fn new(workers: usize) -> Self {
        assert!(workers > 0, "FairScheduler needs at least one worker");
        Self {
            workers,
            inner: Mutex::new(Inner {
                free: workers,
                slots: Vec::new(),
                cursor: 0,
                grant_log: Vec::new(),
                next_id: 0,
            }),
            cv: Condvar::new(),
        }
    }

    /// The compute-slot count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Registers a job; the returned id names it in grants and accounts.
    pub fn register(&self) -> u64 {
        let mut inner = self.lock();
        let id = inner.next_id;
        inner.next_id += 1;
        inner.slots.push(Slot {
            id,
            waiting: 0,
            granted: 0,
            wait: Duration::ZERO,
            active: true,
        });
        id
    }

    /// Deactivates a job's slot; its accounting remains readable.  The
    /// job must have no waiting tasks (its launches have returned).
    pub fn unregister(&self, id: u64) {
        let mut inner = self.lock();
        if let Some(slot) = inner.slots.iter_mut().find(|s| s.id == id) {
            debug_assert_eq!(slot.waiting, 0, "unregister with tasks still waiting");
            slot.active = false;
        }
    }

    /// The [`TaskGate`] that routes one job's part-tasks through this
    /// scheduler; install it with
    /// [`JobRunner::task_gate`](ripple_core::JobRunner::task_gate).
    pub fn gate(self: &Arc<Self>, id: u64) -> Arc<JobGate> {
        Arc::new(JobGate {
            sched: Arc::clone(self),
            id,
        })
    }

    /// Blocks until the round-robin discipline grants job `id` a slot.
    pub fn acquire(&self, id: u64) {
        let start = Instant::now();
        let mut inner = self.lock();
        let idx = inner
            .slots
            .iter()
            .position(|s| s.id == id)
            .expect("acquire for unregistered job");
        inner.slots[idx].waiting += 1;
        loop {
            if inner.free > 0 && Self::turn(&inner) == Some(idx) {
                inner.free -= 1;
                let len = inner.slots.len();
                inner.cursor = (idx + 1) % len;
                if inner.grant_log.len() < GRANT_LOG_CAP {
                    inner.grant_log.push(id);
                }
                let slot = &mut inner.slots[idx];
                slot.waiting -= 1;
                slot.granted += 1;
                slot.wait += start.elapsed();
                drop(inner);
                // Another job's waiter may now be the turn-holder while
                // slots remain free.
                self.cv.notify_all();
                return;
            }
            inner = self.cv.wait(inner).expect("scheduler poisoned");
        }
    }

    /// Returns a slot to the pool.
    pub fn release(&self) {
        let mut inner = self.lock();
        debug_assert!(inner.free < self.workers, "release without acquire");
        inner.free += 1;
        drop(inner);
        self.cv.notify_all();
    }

    /// The slot index whose job holds the next grant: the first active
    /// job with waiting tasks at or after the cursor, cyclically.
    fn turn(inner: &Inner) -> Option<usize> {
        let n = inner.slots.len();
        (0..n)
            .map(|k| (inner.cursor + k) % n)
            .find(|&i| inner.slots[i].active && inner.slots[i].waiting > 0)
    }

    /// One job's accounting snapshot.
    pub fn account(&self, id: u64) -> Option<SchedAccount> {
        self.lock()
            .slots
            .iter()
            .find(|s| s.id == id)
            .map(|s| SchedAccount {
                job: s.id,
                granted: s.granted,
                wait: s.wait,
            })
    }

    /// All jobs' accounting snapshots, in registration order.
    pub fn accounts(&self) -> Vec<SchedAccount> {
        self.lock()
            .slots
            .iter()
            .map(|s| SchedAccount {
                job: s.id,
                granted: s.granted,
                wait: s.wait,
            })
            .collect()
    }

    /// The recorded grant order (job ids), capped at an internal bound.
    pub fn grant_log(&self) -> Vec<u64> {
        self.lock().grant_log.clone()
    }

    /// Tasks of job `id` currently blocked waiting for a slot.
    pub fn waiting(&self, id: u64) -> usize {
        self.lock()
            .slots
            .iter()
            .find(|s| s.id == id)
            .map_or(0, |s| s.waiting)
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().expect("scheduler poisoned")
    }
}

/// One job's handle into a [`FairScheduler`]; implements [`TaskGate`] so
/// a [`JobRunner`](ripple_core::JobRunner) can be gated by it.
#[derive(Debug)]
pub struct JobGate {
    sched: Arc<FairScheduler>,
    id: u64,
}

impl JobGate {
    /// The job's scheduler id.
    pub fn id(&self) -> u64 {
        self.id
    }
}

impl TaskGate for JobGate {
    fn acquire(&self) {
        self.sched.acquire(self.id);
    }

    fn release(&self) {
        self.sched.release();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::thread;

    #[test]
    fn bounds_concurrency_to_worker_count() {
        let sched = Arc::new(FairScheduler::new(2));
        let id = sched.register();
        let live = Arc::new(AtomicUsize::new(0));
        let peak = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let (sched, live, peak) = (Arc::clone(&sched), Arc::clone(&live), Arc::clone(&peak));
            handles.push(thread::spawn(move || {
                sched.acquire(id);
                let now = live.fetch_add(1, Ordering::SeqCst) + 1;
                peak.fetch_max(now, Ordering::SeqCst);
                thread::sleep(Duration::from_millis(5));
                live.fetch_sub(1, Ordering::SeqCst);
                sched.release();
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert!(peak.load(Ordering::SeqCst) <= 2);
        assert_eq!(sched.account(id).unwrap().granted, 8);
    }

    #[test]
    fn grants_alternate_between_waiting_jobs() {
        // One worker; job A holds it while two waiters of each job park.
        // As each grantee releases, grants must alternate B A B A.
        let sched = Arc::new(FairScheduler::new(1));
        let a = sched.register();
        let b = sched.register();
        sched.acquire(a); // cursor now points at b

        let mut handles = Vec::new();
        for &job in &[a, a, b, b] {
            let sched = Arc::clone(&sched);
            handles.push(thread::spawn(move || {
                sched.acquire(job);
                sched.release();
            }));
        }
        // Park all four waiters before releasing the held slot.
        while sched.waiting(a) < 2 || sched.waiting(b) < 2 {
            thread::sleep(Duration::from_millis(1));
        }
        sched.release();
        for h in handles {
            h.join().unwrap();
        }

        let log = sched.grant_log();
        assert_eq!(log, vec![a, b, a, b, a]);
        assert_eq!(sched.account(a).unwrap().granted, 3);
        assert_eq!(sched.account(b).unwrap().granted, 2);
        assert!(sched.account(b).unwrap().wait > Duration::ZERO);
    }

    #[test]
    fn inactive_jobs_are_skipped() {
        let sched = Arc::new(FairScheduler::new(1));
        let a = sched.register();
        let b = sched.register();
        sched.unregister(a);
        // Only b ever asks; the dead slot for a must not wedge the turn.
        sched.acquire(b);
        sched.release();
        assert_eq!(sched.grant_log(), vec![b]);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_rejected() {
        let _ = FairScheduler::new(0);
    }
}
