//! Admission control: per-job resource quotas and typed rejections.
//!
//! The paper's runtime is a *resident service* — §III describes jobs being
//! submitted to an already-running collection of part servers rather than
//! each job booting its own cluster.  A resident service that admits
//! everything is a denial-of-service amplifier, so admission is the first
//! gate: a [`JobSpec`] declares what the job wants, a [`JobQuota`] bounds
//! what the server will give it, and a violation is a typed
//! [`AdmitError`] the client can react to (resubmit smaller, wait, pick
//! another server) instead of a stringly-typed surprise mid-run.

use std::time::Duration;

/// Per-job resource bounds enforced at admission and during the run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobQuota {
    /// Most table parts one job may spread over.
    pub max_parts: u32,
    /// Most state bytes the job may *declare* at submission
    /// ([`JobSpec::est_state_bytes`]); declared, not metered — the
    /// admission analogue of a container memory request.
    pub max_state_bytes: u64,
    /// Superstep budget per launch; enforced by the engine's step cap, so
    /// a runaway job yields its workers back at the next barrier.
    pub max_supersteps: u32,
}

impl Default for JobQuota {
    fn default() -> Self {
        Self {
            max_parts: 64,
            max_state_bytes: 1 << 30,
            max_supersteps: 100_000,
        }
    }
}

/// What a client declares when submitting a job to the server.
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// Parts the job's tables will use (also the fan-out of its
    /// part-tasks per phase).
    pub parts: u32,
    /// Declared state footprint in bytes, checked against
    /// [`JobQuota::max_state_bytes`].
    pub est_state_bytes: u64,
    /// Per-job quota override; `None` uses the server's default quota.
    pub quota: Option<JobQuota>,
    /// Collect per-step profiles for this job (on by default — the
    /// server's accounting is built from them).
    pub profile: bool,
    /// Pin the job to a specific store in the server's pool; `None`
    /// places it round-robin.
    pub placement: Option<usize>,
}

impl JobSpec {
    /// A spec over `parts` parts with no declared state bytes, default
    /// quota, and profiling on.
    pub fn new(parts: u32) -> Self {
        Self {
            parts,
            est_state_bytes: 0,
            quota: None,
            profile: true,
            placement: None,
        }
    }

    /// Declares the job's state footprint.
    #[must_use]
    pub fn state_bytes(mut self, bytes: u64) -> Self {
        self.est_state_bytes = bytes;
        self
    }

    /// Overrides the server's default quota for this job.
    #[must_use]
    pub fn quota(mut self, quota: JobQuota) -> Self {
        self.quota = Some(quota);
        self
    }

    /// Turns per-step profiling off for this job.
    #[must_use]
    pub fn no_profile(mut self) -> Self {
        self.profile = false;
        self
    }

    /// Pins the job to store `index` of the server's pool (modulo pool
    /// size).
    #[must_use]
    pub fn placement(mut self, index: usize) -> Self {
        self.placement = Some(index);
        self
    }
}

/// Why the server refused to admit a job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AdmitError {
    /// The server is at its concurrent-job limit.
    TooManyJobs {
        /// Jobs currently admitted (running or resident).
        admitted: usize,
        /// The server's limit.
        max: usize,
    },
    /// The job asked for more parts than its quota allows.
    PartsQuota {
        /// Parts requested.
        requested: u32,
        /// Quota limit.
        max: u32,
    },
    /// The job declared more state bytes than its quota allows.
    MemoryQuota {
        /// Bytes declared.
        declared: u64,
        /// Quota limit.
        max: u64,
    },
    /// A job with this name is already admitted.
    NameTaken(String),
    /// The server is shutting down and admits nothing new.
    ShuttingDown,
}

impl std::fmt::Display for AdmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::TooManyJobs { admitted, max } => {
                write!(f, "job limit reached ({admitted} admitted, max {max})")
            }
            Self::PartsQuota { requested, max } => {
                write!(f, "parts quota exceeded ({requested} requested, max {max})")
            }
            Self::MemoryQuota { declared, max } => {
                write!(
                    f,
                    "memory quota exceeded ({declared} bytes declared, max {max})"
                )
            }
            Self::NameTaken(name) => write!(f, "job name {name:?} already admitted"),
            Self::ShuttingDown => write!(f, "server is shutting down"),
        }
    }
}

impl std::error::Error for AdmitError {}

/// Server-wide configuration fixed at construction.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Compute-slot count of the shared worker pool: at most this many
    /// part-tasks (across *all* jobs) execute concurrently.
    pub workers: usize,
    /// Most jobs admitted at once (running plus resident).
    pub max_jobs: usize,
    /// Quota applied to jobs that do not override it.
    pub default_quota: JobQuota,
    /// How long a resident serving loop sleeps waiting for mutations
    /// before re-checking for shutdown.
    pub serve_poll: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            workers: 4,
            max_jobs: 8,
            default_quota: JobQuota::default(),
            serve_poll: Duration::from_millis(50),
        }
    }
}

impl ServerConfig {
    /// A config with `workers` compute slots and defaults elsewhere.
    pub fn with_workers(workers: usize) -> Self {
        Self {
            workers,
            ..Self::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_builder_applies_fields() {
        let quota = JobQuota {
            max_parts: 2,
            max_state_bytes: 100,
            max_supersteps: 10,
        };
        let spec = JobSpec::new(4).state_bytes(64).quota(quota).no_profile();
        assert_eq!(spec.parts, 4);
        assert_eq!(spec.est_state_bytes, 64);
        assert_eq!(spec.quota, Some(quota));
        assert!(!spec.profile);
    }

    #[test]
    fn admit_errors_render() {
        let errors: Vec<AdmitError> = vec![
            AdmitError::TooManyJobs {
                admitted: 8,
                max: 8,
            },
            AdmitError::PartsQuota {
                requested: 128,
                max: 64,
            },
            AdmitError::MemoryQuota {
                declared: 2,
                max: 1,
            },
            AdmitError::NameTaken("pagerank".into()),
            AdmitError::ShuttingDown,
        ];
        for e in errors {
            assert!(!e.to_string().is_empty());
        }
    }
}
