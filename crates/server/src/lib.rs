//! `ripple-server` — a resident multi-tenant job service over the Ripple
//! runtime.
//!
//! The paper's deployment model (§III) is a *standing* collection of
//! part servers that analytics jobs are submitted to, not a cluster each
//! job boots and tears down.  [`JobRunner`](ripple_core::JobRunner) by
//! itself reproduces only the one-shot driver; this crate adds the
//! service around it:
//!
//! - **Admission** ([`quota`]) — a [`JobSpec`] declares parts, state
//!   footprint, and optional quota override; the server refuses with a
//!   typed [`AdmitError`] (job limit, parts quota, memory quota, name
//!   collision, shutdown) instead of degrading everyone.
//! - **Fair scheduling** ([`sched`]) — all admitted jobs' part-tasks
//!   contend for one pool of compute slots; a round-robin
//!   [`FairScheduler`] interleaves grants *across jobs* so a wide job
//!   cannot starve a narrow one, and meters per-job grants and queue
//!   wait.  The gate rides the runner's
//!   [`task_gate`](ripple_core::JobRunner::task_gate) hook, acquired
//!   outside the engine's timed spans — profiles keep pricing real work.
//! - **Accounting** ([`server`]) — every launch's
//!   [`StepProfile`](ripple_core::StepProfile)s fold into a per-job
//!   [`JobAccount`] carrying the BSP cost terms (`Σw`, `Σh`, `Σl`) next
//!   to the scheduler's meters; [`JobServer::accounting_json`] exports
//!   the lot.
//! - **Serving mode** ([`serving`]) — a resident incremental-SSSP job
//!   ([`ServingSssp`]): mutations stream through a
//!   [`MutationQueue`](ripple_graph::MutationQueue), each drained batch
//!   runs as one selective-enablement wave, and point queries are
//!   answered from the last barrier's consistent snapshot without
//!   stopping the job.
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use ripple_core::{FnLoader, LoadSink, RunOptions, SimpleJob};
//! use ripple_server::{JobServer, JobSpec, ServerConfig};
//! use ripple_store_mem::MemStore;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let store = MemStore::builder().default_parts(4).build();
//! let server = JobServer::single(ServerConfig::with_workers(2), store);
//!
//! let job = SimpleJob::<u32, u32, u32>::builder("count")
//!     .compute(|ctx| {
//!         let v = ctx.read_state(0)?.unwrap_or(0);
//!         ctx.write_state(0, &v.saturating_sub(1))?;
//!         Ok(v > 1)
//!     })
//!     .build();
//! let loader = FnLoader::new(|sink: &mut dyn LoadSink<SimpleJob<u32, u32, u32>>| {
//!     for k in 0..4u32 {
//!         sink.state(0, k, 3)?;
//!         sink.enable(k)?;
//!     }
//!     Ok(())
//! });
//!
//! let handle = server.submit(
//!     "count",
//!     JobSpec::new(4),
//!     Arc::new(job),
//!     RunOptions::new().loader(Box::new(loader)),
//! )?;
//! let outcome = handle.wait()?;
//! assert_eq!(outcome.steps, 3);
//! assert_eq!(server.account("count").unwrap().steps, 3);
//! # Ok(())
//! # }
//! ```

pub mod quota;
pub mod sched;
pub mod server;
pub mod serving;

pub use quota::{AdmitError, JobQuota, JobSpec, ServerConfig};
pub use sched::{FairScheduler, JobGate, SchedAccount};
pub use server::{JobAccount, JobHandle, JobServer, JobStatus, ResidentJob, StorePool};
pub use serving::{QueryAnswer, ServeError, ServingReport, ServingSssp};
