//! The resident job service: admission, shared workers, per-job
//! accounting.
//!
//! [`JobRunner::launch`](ripple_core::JobRunner::launch) is one-shot — a
//! driver that owns a store, runs a job, and exits.  The paper's runtime
//! is the opposite shape: part servers are *resident*, and many analytics
//! jobs come and go against them (§III).  [`JobServer`] reproduces that
//! shape in-process: it owns a [`StorePool`] and a worker pool of
//! [`ServerConfig::workers`] compute slots, admits jobs under quota
//! ([`AdmitError`] when it refuses), runs each admitted job on its own
//! controller thread with a [`FairScheduler`] gate interleaving
//! part-tasks across jobs, and folds every run's
//! [`StepProfile`](ripple_core::StepProfile)s into per-job
//! [`JobAccount`]s exportable as JSON.
//!
//! Admitted jobs always run the synchronized engine
//! ([`ExecMode::Synchronized`]): the scheduling gate brackets the
//! engine's phase tasks, which is exactly the unit of work a BSP barrier
//! already delimits, so gating is sound there by construction.

use std::collections::HashSet;
use std::sync::{Arc, Mutex};
use std::time::Duration;

use ripple_core::{
    CostModel, EbspError, ExecMode, Job, JobRunner, LaunchMode, RunOptions, RunOutcome,
};
use ripple_kv::KvStore;

use crate::quota::{AdmitError, JobSpec, ServerConfig};
use crate::sched::FairScheduler;

/// The stores a server places jobs onto.  A pool of one is the common
/// case (every job shares the store — maximal contention, which is what
/// the isolation tests want); a larger pool spreads jobs round-robin.
#[derive(Debug, Clone)]
pub struct StorePool<S: KvStore> {
    stores: Vec<S>,
}

impl<S: KvStore> StorePool<S> {
    /// A pool over `stores`.
    ///
    /// # Panics
    ///
    /// Panics if `stores` is empty.
    pub fn new(stores: Vec<S>) -> Self {
        assert!(!stores.is_empty(), "StorePool needs at least one store");
        Self { stores }
    }

    /// A pool of one shared store.
    pub fn single(store: S) -> Self {
        Self::new(vec![store])
    }

    /// Pool size.
    pub fn len(&self) -> usize {
        self.stores.len()
    }

    /// True when the pool is empty (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.stores.is_empty()
    }

    /// The store at `index` (modulo pool size).
    pub fn store(&self, index: usize) -> &S {
        &self.stores[index % self.stores.len()]
    }
}

/// How far a job got.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobStatus {
    /// Admitted, controller thread running.
    Running,
    /// Admitted as a resident (serving) job; records waves as they land.
    Resident,
    /// Finished cleanly.
    Done,
    /// Finished with an engine error.
    Failed,
}

impl JobStatus {
    fn as_str(self) -> &'static str {
        match self {
            Self::Running => "running",
            Self::Resident => "resident",
            Self::Done => "done",
            Self::Failed => "failed",
        }
    }
}

/// Cumulative accounting for one admitted job — [`RunMetrics`] totals
/// plus the BSP cost terms derived from its step profiles and the
/// scheduler's per-job grant/wait meters.
///
/// [`RunMetrics`]: ripple_core::RunMetrics
#[derive(Debug, Clone)]
pub struct JobAccount {
    /// The job's admission name.
    pub name: String,
    /// Scheduler id (grant-log entries use it).
    pub sched_id: u64,
    /// Launches recorded (a batch job has 1; a resident job counts its
    /// initial solve and every applied wave).
    pub launches: u64,
    /// Total synchronized steps across launches.
    pub steps: u64,
    /// Total compute invocations.
    pub invocations: u64,
    /// Total messages sent.
    pub messages_sent: u64,
    /// Total run wall-clock (sum of launch elapsed times).
    pub elapsed: Duration,
    /// BSP `Σ wᵢ` — per-step critical-path compute, from profiles.
    pub compute_wall: Duration,
    /// BSP `Σ hᵢ` in bytes — cross-part traffic, from profiles.
    pub h_bytes: u64,
    /// BSP `Σ l`ᵢ lower bound — barrier skew, from profiles.
    pub barrier_skew: Duration,
    /// Compute slots the scheduler granted this job.
    pub sched_granted: u64,
    /// Time this job's tasks spent queued for a slot.
    pub sched_wait: Duration,
    /// Where the job stands.
    pub status: JobStatus,
}

impl JobAccount {
    fn new(name: &str, sched_id: u64, status: JobStatus) -> Self {
        Self {
            name: name.to_owned(),
            sched_id,
            launches: 0,
            steps: 0,
            invocations: 0,
            messages_sent: 0,
            elapsed: Duration::ZERO,
            compute_wall: Duration::ZERO,
            h_bytes: 0,
            barrier_skew: Duration::ZERO,
            sched_granted: 0,
            sched_wait: Duration::ZERO,
            status: JobStatus::Running,
        }
        .with_status(status)
    }

    fn with_status(mut self, status: JobStatus) -> Self {
        self.status = status;
        self
    }

    fn fold_outcome(&mut self, outcome: &RunOutcome) {
        self.launches += 1;
        self.steps += u64::from(outcome.steps);
        self.invocations += outcome.metrics.invocations;
        self.messages_sent += outcome.metrics.messages_sent;
        self.elapsed += outcome.metrics.elapsed;
        if let Some(profiles) = &outcome.profiles {
            let cost = CostModel::derive(profiles);
            self.compute_wall += cost.total_w();
            self.h_bytes += cost.total_h_bytes();
            self.barrier_skew += cost.total_l();
        }
    }

    fn json(&self) -> String {
        format!(
            concat!(
                "{{\"name\":{},\"sched_id\":{},\"status\":\"{}\",",
                "\"launches\":{},\"steps\":{},\"invocations\":{},",
                "\"messages_sent\":{},\"elapsed_us\":{},\"w_us\":{},",
                "\"h_bytes\":{},\"l_us\":{},\"sched_granted\":{},",
                "\"sched_wait_us\":{}}}"
            ),
            json_string(&self.name),
            self.sched_id,
            self.status.as_str(),
            self.launches,
            self.steps,
            self.invocations,
            self.messages_sent,
            self.elapsed.as_micros(),
            self.compute_wall.as_micros(),
            self.h_bytes,
            self.barrier_skew.as_micros(),
            self.sched_granted,
            self.sched_wait.as_micros(),
        )
    }
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[derive(Debug)]
struct ServerInner {
    shutting_down: bool,
    admitted: HashSet<String>,
    next_placement: usize,
    accounts: Vec<JobAccount>,
}

/// A resident multi-tenant job service over a pool of stores.
///
/// Cheap to clone; clones share the server.
pub struct JobServer<S: KvStore> {
    pool: StorePool<S>,
    sched: Arc<FairScheduler>,
    config: ServerConfig,
    inner: Arc<Mutex<ServerInner>>,
}

impl<S: KvStore> Clone for JobServer<S> {
    fn clone(&self) -> Self {
        Self {
            pool: self.pool.clone(),
            sched: Arc::clone(&self.sched),
            config: self.config.clone(),
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<S: KvStore> std::fmt::Debug for JobServer<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.lock();
        f.debug_struct("JobServer")
            .field("workers", &self.config.workers)
            .field("max_jobs", &self.config.max_jobs)
            .field("stores", &self.pool.len())
            .field("admitted", &inner.admitted.len())
            .field("accounts", &inner.accounts.len())
            .finish()
    }
}

/// A submitted job: join it for the outcome.
#[derive(Debug)]
pub struct JobHandle {
    name: String,
    store_index: usize,
    thread: std::thread::JoinHandle<Result<RunOutcome, EbspError>>,
}

impl JobHandle {
    /// The job's admission name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Index of the pool store the job was placed on.
    pub fn store_index(&self) -> usize {
        self.store_index
    }

    /// Blocks until the job's controller thread finishes and returns its
    /// outcome.
    ///
    /// # Errors
    ///
    /// Propagates the launch's engine error.
    ///
    /// # Panics
    ///
    /// Re-raises a panic from the job's controller thread.
    pub fn wait(self) -> Result<RunOutcome, EbspError> {
        match self.thread.join() {
            Ok(result) => result,
            Err(panic) => std::panic::resume_unwind(panic),
        }
    }
}

impl<S: KvStore> JobServer<S> {
    /// A server over `pool` with `config`.
    pub fn new(config: ServerConfig, pool: StorePool<S>) -> Self {
        Self {
            sched: Arc::new(FairScheduler::new(config.workers)),
            pool,
            config,
            inner: Arc::new(Mutex::new(ServerInner {
                shutting_down: false,
                admitted: HashSet::new(),
                next_placement: 0,
                accounts: Vec::new(),
            })),
        }
    }

    /// A server whose pool is one shared store.
    pub fn single(config: ServerConfig, store: S) -> Self {
        Self::new(config, StorePool::single(store))
    }

    /// The server's configuration.
    pub fn config(&self) -> &ServerConfig {
        &self.config
    }

    /// The shared scheduler (grant log and accounts are read off it).
    pub fn scheduler(&self) -> &Arc<FairScheduler> {
        &self.sched
    }

    /// The store at pool `index`.
    pub fn store(&self, index: usize) -> &S {
        self.pool.store(index)
    }

    /// Runs the admission checks and, on success, reserves the job's
    /// name, picks its placement, registers a scheduler slot, and opens
    /// its account.
    fn admit(
        &self,
        name: &str,
        spec: &JobSpec,
        status: JobStatus,
    ) -> Result<(u64, usize, usize), AdmitError> {
        let quota = spec.quota.unwrap_or(self.config.default_quota);
        let mut inner = self.lock();
        if inner.shutting_down {
            return Err(AdmitError::ShuttingDown);
        }
        // The most specific refusal first: a duplicate name is a client
        // bug worth reporting even when the server is also full.
        if inner.admitted.contains(name) {
            return Err(AdmitError::NameTaken(name.to_owned()));
        }
        if spec.parts > quota.max_parts {
            return Err(AdmitError::PartsQuota {
                requested: spec.parts,
                max: quota.max_parts,
            });
        }
        if spec.est_state_bytes > quota.max_state_bytes {
            return Err(AdmitError::MemoryQuota {
                declared: spec.est_state_bytes,
                max: quota.max_state_bytes,
            });
        }
        if inner.admitted.len() >= self.config.max_jobs {
            return Err(AdmitError::TooManyJobs {
                admitted: inner.admitted.len(),
                max: self.config.max_jobs,
            });
        }
        inner.admitted.insert(name.to_owned());
        let store_index = match spec.placement {
            Some(i) => i % self.pool.len(),
            None => {
                let i = inner.next_placement % self.pool.len();
                inner.next_placement += 1;
                i
            }
        };
        let sched_id = self.sched.register();
        let account_index = inner.accounts.len();
        inner.accounts.push(JobAccount::new(name, sched_id, status));
        Ok((sched_id, store_index, account_index))
    }

    /// The gated, step-capped, profiled runner an admitted job executes
    /// on.
    fn build_runner(&self, store: &S, sched_id: u64, spec: &JobSpec) -> JobRunner<S> {
        let quota = spec.quota.unwrap_or(self.config.default_quota);
        let mut runner = JobRunner::new(store.clone());
        runner
            .task_gate(self.sched.gate(sched_id))
            .max_steps(quota.max_supersteps)
            .profile(spec.profile)
            .force_mode(ExecMode::Synchronized);
        runner
    }

    /// Admits and starts `job` under `name`, returning a handle to join.
    /// The job runs on its own controller thread; its part-tasks contend
    /// for the server's shared workers under the fair scheduler.
    ///
    /// # Errors
    ///
    /// Returns the typed [`AdmitError`] when admission refuses the spec.
    pub fn submit<J, M>(
        &self,
        name: &str,
        spec: JobSpec,
        job: Arc<J>,
        options: RunOptions<J, M>,
    ) -> Result<JobHandle, AdmitError>
    where
        J: Job,
        M: LaunchMode<S> + Send + 'static,
    {
        let (sched_id, store_index, account_index) = self.admit(name, &spec, JobStatus::Running)?;
        let runner = self.build_runner(self.pool.store(store_index), sched_id, &spec);
        let server = self.clone();
        let job_name = name.to_owned();
        let thread = std::thread::Builder::new()
            .name(format!("ripple-job-{job_name}"))
            .spawn(move || {
                let result = runner.launch(job, options);
                server.settle(account_index, sched_id, &job_name, result.as_ref().ok());
                result
            })
            .expect("spawn job controller thread");
        Ok(JobHandle {
            name: name.to_owned(),
            store_index,
            thread,
        })
    }

    /// Admits `name` as a *resident* job: no controller thread is spawned
    /// — the caller drives launches itself through the returned handle's
    /// runner (a serving loop applying mutation waves, say) and the
    /// admission slot is held until the handle drops.
    ///
    /// # Errors
    ///
    /// Returns the typed [`AdmitError`] when admission refuses the spec.
    pub fn admit_resident(&self, name: &str, spec: JobSpec) -> Result<ResidentJob<S>, AdmitError> {
        let (sched_id, store_index, account_index) =
            self.admit(name, &spec, JobStatus::Resident)?;
        let runner = self.build_runner(self.pool.store(store_index), sched_id, &spec);
        Ok(ResidentJob {
            server: self.clone(),
            name: name.to_owned(),
            sched_id,
            store_index,
            account_index,
            runner,
            store: self.pool.store(store_index).clone(),
        })
    }

    /// Folds a finished launch into the job's account and frees its
    /// admission slot.
    fn settle(
        &self,
        account_index: usize,
        sched_id: u64,
        name: &str,
        outcome: Option<&RunOutcome>,
    ) {
        self.sched.unregister(sched_id);
        let sched_account = self.sched.account(sched_id);
        let mut inner = self.lock();
        inner.admitted.remove(name);
        let account = &mut inner.accounts[account_index];
        if let Some(outcome) = outcome {
            account.fold_outcome(outcome);
            account.status = JobStatus::Done;
        } else {
            account.status = JobStatus::Failed;
        }
        if let Some(s) = sched_account {
            account.sched_granted = s.granted;
            account.sched_wait = s.wait;
        }
    }

    /// Refuses all future admissions (running jobs finish normally).
    pub fn shutdown(&self) {
        self.lock().shutting_down = true;
    }

    /// Jobs currently admitted (running or resident).
    pub fn admitted(&self) -> usize {
        self.lock().admitted.len()
    }

    /// Accounting snapshots for every job ever admitted, in admission
    /// order.
    pub fn accounts(&self) -> Vec<JobAccount> {
        self.lock().accounts.clone()
    }

    /// The account for `name` (the most recent admission under it).
    pub fn account(&self, name: &str) -> Option<JobAccount> {
        self.lock()
            .accounts
            .iter()
            .rev()
            .find(|a| a.name == name)
            .cloned()
    }

    /// Per-job accounting as a JSON document:
    /// `{"schema":1,"workers":…,"max_jobs":…,"jobs":[…]}` with one entry
    /// per admitted job carrying run totals, the BSP cost terms (`w_us`,
    /// `h_bytes`, `l_us`) derived from its step profiles, and the
    /// scheduler's grant/wait meters.
    pub fn accounting_json(&self) -> String {
        let inner = self.lock();
        let jobs: Vec<String> = inner.accounts.iter().map(JobAccount::json).collect();
        format!(
            "{{\"schema\":1,\"workers\":{},\"max_jobs\":{},\"jobs\":[{}]}}",
            self.config.workers,
            self.config.max_jobs,
            jobs.join(",")
        )
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, ServerInner> {
        self.inner.lock().expect("server poisoned")
    }
}

/// An admitted resident job: the caller drives launches on
/// [`ResidentJob::runner`] (each one gated and step-capped like a
/// submitted job's) and records their outcomes; dropping the handle
/// settles the account and frees the admission slot.
pub struct ResidentJob<S: KvStore> {
    server: JobServer<S>,
    name: String,
    sched_id: u64,
    store_index: usize,
    account_index: usize,
    runner: JobRunner<S>,
    store: S,
}

impl<S: KvStore> std::fmt::Debug for ResidentJob<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ResidentJob")
            .field("name", &self.name)
            .field("sched_id", &self.sched_id)
            .field("store_index", &self.store_index)
            .finish_non_exhaustive()
    }
}

impl<S: KvStore> ResidentJob<S> {
    /// The job's admission name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Index of the pool store the job was placed on.
    pub fn store_index(&self) -> usize {
        self.store_index
    }

    /// The gated runner launches must go through.
    pub fn runner(&self) -> &JobRunner<S> {
        &self.runner
    }

    /// Mutable runner access — a serving loop installs its barrier
    /// observer here before the first launch.
    pub fn runner_mut(&mut self) -> &mut JobRunner<S> {
        &mut self.runner
    }

    /// The pool store the job was placed on.
    pub fn store(&self) -> &S {
        &self.store
    }

    /// Folds one launch's outcome into the job's account (a serving loop
    /// calls this after every wave).
    pub fn record(&self, outcome: &RunOutcome) {
        let mut inner = self.server.lock();
        inner.accounts[self.account_index].fold_outcome(outcome);
    }

    /// Marks the job failed (the serving loop hit an engine error); the
    /// drop still settles and frees the slot.
    pub fn mark_failed(&self) {
        let mut inner = self.server.lock();
        inner.accounts[self.account_index].status = JobStatus::Failed;
    }
}

impl<S: KvStore> Drop for ResidentJob<S> {
    fn drop(&mut self) {
        self.server.sched.unregister(self.sched_id);
        let sched_account = self.server.sched.account(self.sched_id);
        let mut inner = self.server.lock();
        inner.admitted.remove(&self.name);
        let account = &mut inner.accounts[self.account_index];
        if account.status == JobStatus::Resident {
            account.status = JobStatus::Done;
        }
        if let Some(s) = sched_account {
            account.sched_granted = s.granted;
            account.sched_wait = s.wait;
        }
    }
}
