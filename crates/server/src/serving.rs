//! Serving mode: a resident incremental-SSSP job answering point queries
//! between barriers while mutations stream in.
//!
//! The paper's incremental SSSP (§V-C) is driven in discrete rounds: a
//! driver hands the instance a change batch, the selective-enablement
//! wave runs, the driver reads distances.  A *service* inverts the
//! control flow — mutations arrive continuously on a [`MutationQueue`],
//! a serving loop drains them into batches and applies each batch as one
//! wave on a [`ResidentJob`]'s gated runner, and point queries are
//! answered at any time from the **last consistent barrier snapshot**:
//! an observer hooked on [`RunObserver::on_step`] (the engine is paused
//! at the barrier, so the cut is writer-consistent) snapshots the state
//! table, decodes it into a versioned distance map behind an `RwLock`,
//! and queries read only that map — they never touch the live table, so
//! they neither block nor observe a half-applied wave.
//!
//! The version counter makes staleness observable: it bumps once per
//! refresh, so a client comparing versions across queries can tell "same
//! barrier" from "newer barrier".

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::Duration;

use ripple_core::{AggregateSnapshot, EbspError, RunObserver};
use ripple_graph::generate::{Graph, GraphChange};
use ripple_graph::sssp::{distances_from_snapshot, SelectiveInstance};
use ripple_graph::{MutationQueue, VertexId, INF};
use ripple_kv::KvStore;

use crate::quota::{AdmitError, JobSpec};
use crate::server::{JobServer, ResidentJob};

/// Most mutations folded into one wave.
const WAVE_BATCH_MAX: usize = 1024;

/// Why serving could not start or finish.
#[derive(Debug)]
pub enum ServeError {
    /// The server refused admission.
    Admit(AdmitError),
    /// The initial solve or a wave failed in the engine.
    Engine(EbspError),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Admit(e) => write!(f, "admission refused: {e}"),
            Self::Engine(e) => write!(f, "serving failed: {e}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Admit(e) => Some(e),
            Self::Engine(e) => Some(e),
        }
    }
}

impl From<AdmitError> for ServeError {
    fn from(e: AdmitError) -> Self {
        Self::Admit(e)
    }
}

impl From<EbspError> for ServeError {
    fn from(e: EbspError) -> Self {
        Self::Engine(e)
    }
}

/// The queryable product of the last refresh: dense distances indexed by
/// vertex, stamped with a monotonic version.
#[derive(Debug, Default)]
struct DistanceMap {
    version: u64,
    dists: Vec<u32>,
}

/// One point query's answer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueryAnswer {
    /// Distance from the source at the answering snapshot; `None` when
    /// the vertex is outside the loaded graph, [`INF`] when unreachable.
    pub dist: Option<u32>,
    /// The snapshot's version (0 = no barrier has refreshed yet).
    pub version: u64,
}

impl QueryAnswer {
    /// True when the vertex was known and reachable.
    pub fn reachable(&self) -> bool {
        matches!(self.dist, Some(d) if d != INF)
    }
}

#[derive(Debug, Default)]
struct ServingShared {
    waves: AtomicU64,
    mutations_applied: AtomicU64,
    queries: AtomicU64,
    refreshes: AtomicU64,
    refresh_errors: AtomicU64,
    error: Mutex<Option<EbspError>>,
}

/// Lifetime summary returned by [`ServingSssp::finish`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServingReport {
    /// Waves applied (the initial solve is not a wave).
    pub waves: u64,
    /// Mutations folded into those waves.
    pub mutations_applied: u64,
    /// Point queries answered.
    pub queries: u64,
    /// Snapshot refreshes performed (≥ one per barrier plus one per
    /// wave's tail).
    pub refreshes: u64,
    /// Refreshes that failed (snapshot or decode error).
    pub refresh_errors: u64,
    /// The final snapshot version.
    pub final_version: u64,
}

/// Refreshes the distance map from the state table's current consistent
/// cut.  Called at barriers (engine paused) and after each wave.
fn refresh<S: KvStore>(
    store: &S,
    table: &str,
    map: &RwLock<DistanceMap>,
    shared: &ServingShared,
) -> Result<(), EbspError> {
    let handle = store.lookup_table(table).map_err(EbspError::Kv)?;
    let snapshot = store.snapshot_table(&handle).map_err(EbspError::Kv)?;
    let dists = distances_from_snapshot(&snapshot)?;
    let mut dense = vec![INF; dists.last().map_or(0, |&(v, _)| v as usize + 1)];
    for (v, d) in dists {
        dense[v as usize] = d;
    }
    let mut map = map.write().expect("distance map poisoned");
    map.version += 1;
    map.dists = dense;
    shared.refreshes.fetch_add(1, Ordering::Relaxed);
    Ok(())
}

/// The barrier hook: refresh on every completed step.
struct SnapshotRefresher<S: KvStore> {
    store: S,
    table: String,
    map: Arc<RwLock<DistanceMap>>,
    shared: Arc<ServingShared>,
}

impl<S: KvStore> RunObserver for SnapshotRefresher<S> {
    fn on_step(&self, _step: u32, _enabled_next: u64, _aggregates: &AggregateSnapshot) {
        if refresh(&self.store, &self.table, &self.map, &self.shared).is_err() {
            self.shared.refresh_errors.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// A resident incremental-SSSP serving job.
///
/// Built by [`ServingSssp::start`]; push mutations with
/// [`ServingSssp::push`], read distances with [`ServingSssp::query`],
/// and shut down with [`ServingSssp::finish`].
#[derive(Debug)]
pub struct ServingSssp {
    queue: MutationQueue,
    map: Arc<RwLock<DistanceMap>>,
    shared: Arc<ServingShared>,
    worker: Option<std::thread::JoinHandle<()>>,
}

impl ServingSssp {
    /// Admits `name` on `server`, loads `graph`, runs the initial solve
    /// from `source` on the resident gated runner, and starts the serving
    /// loop.
    ///
    /// # Errors
    ///
    /// [`ServeError::Admit`] when the server refuses the spec;
    /// [`ServeError::Engine`] when the initial solve fails.
    pub fn start<S: KvStore>(
        server: &JobServer<S>,
        name: &str,
        spec: JobSpec,
        graph: &Graph,
        source: VertexId,
    ) -> Result<Self, ServeError> {
        let mut resident = server.admit_resident(name, spec)?;
        let table = format!("{name}__sssp");
        let map = Arc::new(RwLock::new(DistanceMap::default()));
        let shared = Arc::new(ServingShared::default());

        let refresher = Arc::new(SnapshotRefresher {
            store: resident.store().clone(),
            table: table.clone(),
            map: Arc::clone(&map),
            shared: Arc::clone(&shared),
        });
        resident.runner_mut().observer(refresher);

        let init = SelectiveInstance::initialize_on(
            resident.runner(),
            resident.store(),
            &table,
            graph,
            source,
        );
        let (instance, outcome) = match init {
            Ok(pair) => pair,
            Err(e) => {
                resident.mark_failed();
                return Err(e.into());
            }
        };
        resident.record(&outcome);
        // A zero-step solve (empty graph) never fired on_step; make sure
        // at least one consistent snapshot is queryable before returning.
        refresh(resident.store(), &table, &map, &shared)?;

        let queue = MutationQueue::new();
        let poll = server.config().serve_poll;
        let loop_queue = queue.clone();
        let loop_map = Arc::clone(&map);
        let loop_shared = Arc::clone(&shared);
        let worker = std::thread::Builder::new()
            .name(format!("ripple-serve-{name}"))
            .spawn(move || {
                serve_loop(
                    resident,
                    instance,
                    table,
                    loop_queue,
                    loop_map,
                    loop_shared,
                    poll,
                );
            })
            .expect("spawn serving thread");

        Ok(Self {
            queue,
            map,
            shared,
            worker: Some(worker),
        })
    }

    /// Enqueues one graph mutation; `false` once the service is
    /// finishing.
    pub fn push(&self, change: GraphChange) -> bool {
        self.queue.push(change)
    }

    /// Enqueues a batch of mutations; returns how many were accepted.
    pub fn push_batch(&self, changes: &[GraphChange]) -> usize {
        self.queue.push_batch(changes)
    }

    /// Pending (pushed, not yet applied) mutation count.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Answers a point query from the last consistent barrier snapshot —
    /// never blocks on a running wave.
    pub fn query(&self, v: VertexId) -> QueryAnswer {
        self.shared.queries.fetch_add(1, Ordering::Relaxed);
        let map = self.map.read().expect("distance map poisoned");
        QueryAnswer {
            dist: map.dists.get(v as usize).copied(),
            version: map.version,
        }
    }

    /// The current snapshot version (bumps once per refresh).
    pub fn version(&self) -> u64 {
        self.map.read().expect("distance map poisoned").version
    }

    /// Waves applied so far.
    pub fn waves(&self) -> u64 {
        self.shared.waves.load(Ordering::Relaxed)
    }

    /// Closes the mutation queue, drains what is pending, stops the
    /// serving loop, and reports.
    ///
    /// # Errors
    ///
    /// Returns the engine error that stopped the loop early, if any.
    pub fn finish(mut self) -> Result<ServingReport, EbspError> {
        self.queue.close();
        if let Some(worker) = self.worker.take() {
            if let Err(panic) = worker.join() {
                std::panic::resume_unwind(panic);
            }
        }
        if let Some(e) = self.shared.error.lock().expect("serving poisoned").take() {
            return Err(e);
        }
        Ok(ServingReport {
            waves: self.shared.waves.load(Ordering::Relaxed),
            mutations_applied: self.shared.mutations_applied.load(Ordering::Relaxed),
            queries: self.shared.queries.load(Ordering::Relaxed),
            refreshes: self.shared.refreshes.load(Ordering::Relaxed),
            refresh_errors: self.shared.refresh_errors.load(Ordering::Relaxed),
            final_version: self.map.read().expect("distance map poisoned").version,
        })
    }
}

impl Drop for ServingSssp {
    fn drop(&mut self) {
        self.queue.close();
        if let Some(worker) = self.worker.take() {
            let _ = worker.join();
        }
    }
}

/// The serving loop: drain → wave → refresh, until the queue closes and
/// empties.
fn serve_loop<S: KvStore>(
    resident: ResidentJob<S>,
    instance: SelectiveInstance<S>,
    table: String,
    queue: MutationQueue,
    map: Arc<RwLock<DistanceMap>>,
    shared: Arc<ServingShared>,
    poll: Duration,
) {
    loop {
        let batch = queue.wait_drain(WAVE_BATCH_MAX, poll);
        if batch.is_empty() {
            if queue.is_closed() && queue.is_empty() {
                break;
            }
            continue;
        }
        match instance.apply_batch_on(resident.runner(), &batch) {
            Ok(outcome) => {
                resident.record(&outcome);
                shared.waves.fetch_add(1, Ordering::Relaxed);
                shared
                    .mutations_applied
                    .fetch_add(batch.len() as u64, Ordering::Relaxed);
                // A wave whose changes were all no-ops runs zero steps and
                // fires no barrier; refresh so direct state edits (the
                // incremental bookkeeping) still become visible.
                if refresh(resident.store(), &table, &map, &shared).is_err() {
                    shared.refresh_errors.fetch_add(1, Ordering::Relaxed);
                }
            }
            Err(e) => {
                resident.mark_failed();
                *shared.error.lock().expect("serving poisoned") = Some(e);
                break;
            }
        }
    }
    // `resident` drops here, settling the account and freeing the slot.
}
