//! Conservation on the durable backend: on a recovery-free profiled run,
//! per-step profiles must tile the run — Σ step counters equals the
//! run-level [`RunMetrics`] work counters and Σ per-step store deltas
//! equals the run-level store delta, field by field, WAL and fsync
//! counters included.
//!
//! The in-process and networked copies of this invariant live in
//! `ripple-store-net`'s tests; this one pins down the disk-only fields
//! the BSP cost model's per-step h-relation rides on.

use std::sync::Arc;

use ripple_core::{FnLoader, JobRunner, LoadSink, RunOptions, SimpleJob};
use ripple_kv::StoreMetrics;
use ripple_store_disk::{testutil::TempDir, DiskStore};

const KEYS: u32 = 9;

type RingRelay = SimpleJob<u32, u32, u32>;

fn ring_relay(name: &str) -> RingRelay {
    SimpleJob::<u32, u32, u32>::builder(name)
        .compute(|ctx| {
            let me = *ctx.key();
            let seen = ctx.read_state(0)?.unwrap_or(0);
            let hops = ctx.messages().iter().copied().max().unwrap_or(0);
            ctx.write_state(0, &(seen + 1))?;
            if hops > 0 {
                ctx.send((me + 1) % KEYS, hops - 1);
            }
            Ok(false)
        })
        .build()
}

#[test]
fn disk_run_conserves_counters_and_store_deltas() {
    let dir = TempDir::new("conservation");
    let store = DiskStore::builder()
        .default_parts(3)
        .open(dir.path())
        .expect("open disk store");
    let mut runner = JobRunner::new(store);
    runner.profile(true);
    let outcome = runner
        .launch(
            Arc::new(ring_relay("ring_disk")),
            RunOptions::new().loaders(vec![Box::new(FnLoader::new(
                |sink: &mut dyn LoadSink<RingRelay>| {
                    for k in 0..KEYS {
                        sink.message(k, 5)?;
                    }
                    Ok(())
                },
            ))]),
        )
        .unwrap();

    let m = &outcome.metrics;
    assert_eq!(m.recoveries, 0, "conservation only holds recovery-free");
    let profiles = outcome.profiles.as_deref().expect("profiling was on");
    assert_eq!(profiles.len(), outcome.steps as usize);
    assert!(outcome.steps >= 5, "the relay runs one step per hop");

    let count = |f: fn(&ripple_core::StepProfile) -> u64| profiles.iter().map(f).sum::<u64>();
    assert_eq!(count(|p| p.counters.invocations), m.invocations);
    assert_eq!(count(|p| p.counters.messages_sent), m.messages_sent);
    assert_eq!(count(|p| p.counters.state_reads), m.state_reads);
    assert_eq!(count(|p| p.counters.state_writes), m.state_writes);
    assert_eq!(count(|p| p.counters.state_deletes), m.state_deletes);
    assert_eq!(count(|p| p.counters.creates), m.creates);
    assert_eq!(count(|p| p.counters.direct_outputs), m.direct_outputs);

    let sum = profiles.iter().fold(StoreMetrics::default(), |mut acc, p| {
        acc.local_ops += p.store.local_ops;
        acc.remote_ops += p.store.remote_ops;
        acc.bytes_marshalled += p.store.bytes_marshalled;
        acc.tasks_dispatched += p.store.tasks_dispatched;
        acc.enumerations += p.store.enumerations;
        acc.wal_bytes += p.store.wal_bytes;
        acc.fsyncs += p.store.fsyncs;
        acc.replayed_records += p.store.replayed_records;
        acc.rpcs += p.store.rpcs;
        acc.net_bytes_in += p.store.net_bytes_in;
        acc.net_bytes_out += p.store.net_bytes_out;
        acc.retries += p.store.retries;
        acc.retry_bytes += p.store.retry_bytes;
        acc.reconnects += p.store.reconnects;
        acc.failovers += p.store.failovers;
        acc.rpc_latency.merge(&p.store.rpc_latency);
        acc
    });
    assert_eq!(sum, m.store, "per-step store deltas must tile the run");
    assert!(m.store.wal_bytes > 0, "state writes must hit the WAL");
}
