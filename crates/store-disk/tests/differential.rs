//! Differential property test: `DiskStore` behaves exactly like
//! `SimpleStore` under arbitrary op sequences — including a mid-sequence
//! flush, drop, and reopen, after which the replayed state must still
//! agree with the oracle that never went away.

use std::collections::HashMap;

use bytes::Bytes;
use proptest::prelude::*;
use ripple_kv::{DurableStore, KvStore, RoutedKey, SyncPolicy, Table, TableSpec};
use ripple_store_disk::{testutil::TempDir, DiskStore};
use ripple_store_simple::SimpleStore;

#[derive(Debug, Clone)]
enum Op {
    Put(u64, Vec<u8>, Vec<u8>),
    Get(u64, Vec<u8>),
    Delete(u64, Vec<u8>),
    Len,
    Clear,
    /// Flush, drop the disk store, and reopen it from its files.
    Reopen,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    let key = prop::collection::vec(any::<u8>(), 0..8);
    let val = prop::collection::vec(any::<u8>(), 0..16);
    prop_oneof![
        (any::<u64>(), key.clone(), val.clone()).prop_map(|(r, k, v)| Op::Put(r % 8, k, v)),
        (any::<u64>(), key.clone(), val).prop_map(|(r, k, v)| Op::Put(r % 8, k, v)),
        (any::<u64>(), key.clone()).prop_map(|(r, k)| Op::Get(r % 8, k)),
        (any::<u64>(), key).prop_map(|(r, k)| Op::Delete(r % 8, k)),
        Just(Op::Len),
        Just(Op::Clear),
        Just(Op::Reopen),
    ]
}

fn open(dir: &std::path::Path, parts: u32) -> DiskStore {
    DiskStore::builder()
        .default_parts(parts)
        .sync_policy(SyncPolicy::EveryN(3))
        .open(dir)
        .expect("open disk store")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]
    #[test]
    fn disk_store_matches_simple_store_across_reopens(
        parts in 1u32..7,
        ops in prop::collection::vec(op_strategy(), 1..100),
    ) {
        let tmp = TempDir::new("differential");
        let mut disk = open(tmp.path(), parts);
        let mut table = disk.create_table(&TableSpec::new("t")).unwrap();
        let oracle_store = SimpleStore::new(parts);
        let oracle = oracle_store.create_table(&TableSpec::new("t")).unwrap();

        for op in ops {
            match op {
                Op::Put(route, k, v) => {
                    let key = RoutedKey::with_route(route, Bytes::from(k));
                    let value = Bytes::from(v);
                    let got = table.put(key.clone(), value.clone()).unwrap();
                    let expect = oracle.put(key, value).unwrap();
                    prop_assert_eq!(got, expect);
                }
                Op::Get(route, k) => {
                    let key = RoutedKey::with_route(route, Bytes::from(k));
                    prop_assert_eq!(table.get(&key).unwrap(), oracle.get(&key).unwrap());
                }
                Op::Delete(route, k) => {
                    let key = RoutedKey::with_route(route, Bytes::from(k));
                    prop_assert_eq!(table.delete(&key).unwrap(), oracle.delete(&key).unwrap());
                }
                Op::Len => {
                    prop_assert_eq!(table.len().unwrap(), oracle.len().unwrap());
                }
                Op::Clear => {
                    table.clear().unwrap();
                    oracle.clear().unwrap();
                }
                Op::Reopen => {
                    disk.flush().unwrap();
                    drop(table);
                    drop(disk);
                    disk = open(tmp.path(), parts);
                    prop_assert!(disk.recovery_report().is_empty());
                    table = disk.lookup_table("t").unwrap();
                }
            }
        }

        // Final state matches exactly, via enumeration on both sides.
        let consumer = ripple_kv::FnPairConsumer::new(
            |k: &RoutedKey, v: &[u8]| (k.clone(), Bytes::copy_from_slice(v)),
        );
        let disk_pairs: HashMap<RoutedKey, Bytes> =
            disk.enumerate_pairs(&table, consumer).unwrap().into_iter().collect();
        let consumer = ripple_kv::FnPairConsumer::new(
            |k: &RoutedKey, v: &[u8]| (k.clone(), Bytes::copy_from_slice(v)),
        );
        let oracle_pairs: HashMap<RoutedKey, Bytes> =
            oracle_store.enumerate_pairs(&oracle, consumer).unwrap().into_iter().collect();
        prop_assert_eq!(disk_pairs, oracle_pairs);
    }
}
