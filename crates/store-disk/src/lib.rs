//! A durable, WAL-backed implementation of the [`ripple_kv`] store SPI
//! with cross-restart job resume.
//!
//! The in-memory stores (`ripple-store-mem`, `ripple-store-simple`) prove
//! the platform's openness claim; this crate proves its *durability*
//! story: the same engine, queue sets, and applications run unchanged on
//! a store whose contents survive a process crash, and a synchronized job
//! interrupted between barriers resumes from its last durable barrier
//! with byte-identical output.
//!
//! # On-disk layout
//!
//! ```text
//! <dir>/catalog.wal                      table create/drop log
//! <dir>/tables/<name>/pNNNN.wal.<gen>    per-shard write-ahead log
//! <dir>/tables/<name>/pNNNN.snap.<gen>   per-shard snapshot (folds logs <= gen)
//! ```
//!
//! Every durable file is a sequence of length-prefixed, CRC-32-checksummed
//! records framed by [`ripple_wire::write_frame`].  Each shard (one part
//! of one table) keeps its whole contents in a memtable; the log is the
//! recovery mechanism, not the read path.  Opening a store replays the
//! catalog, then each shard's newest snapshot plus the log generations
//! after it.  A torn or corrupt log *tail* — the signature of a crash
//! mid-write — is truncated and reported through
//! [`DiskStore::recovery_report`] rather than failing the open.
//!
//! # Durability protocol
//!
//! Mutations append to a userspace buffer and reach the file (and the
//! disk) according to the store's [`SyncPolicy`](ripple_kv::SyncPolicy):
//! every record, every N records (group commit), or only at explicit
//! flush/barrier points.  The engine's durable launch mode drives
//! the [`DurableStore`](ripple_kv::DurableStore) barrier protocol:
//! barrier markers into every shard log, then the resume journal, then
//! optional snapshot compaction.  On restart,
//! `rewind_group` rebuilds every shard to its exact state at the
//! journalled barrier, discarding mid-step writes after it.
//!
//! Dropping a [`DiskStore`] does *not* flush buffered records — by
//! design, so tests (and the differential proptest) can model a hard
//! crash with an ordinary drop.

mod snapshot;
mod store;
mod wal;

pub use snapshot::DiskPartCheckpoint;
pub use store::{DiskStore, DiskStoreBuilder};

#[doc(hidden)]
pub mod testutil {
    //! Minimal self-cleaning temp directories for tests (the workspace
    //! has no tempfile dependency).

    use std::path::{Path, PathBuf};
    use std::sync::atomic::{AtomicU64, Ordering};

    static NEXT: AtomicU64 = AtomicU64::new(0);

    /// A directory under the system temp root, removed on drop.
    #[derive(Debug)]
    pub struct TempDir {
        path: PathBuf,
    }

    impl TempDir {
        /// Creates a fresh directory; `tag` keeps leak reports readable.
        #[must_use]
        pub fn new(tag: &str) -> Self {
            let n = NEXT.fetch_add(1, Ordering::Relaxed);
            let path = std::env::temp_dir().join(format!(
                "ripple-store-disk-{tag}-{}-{n}",
                std::process::id()
            ));
            std::fs::create_dir_all(&path).expect("create temp dir");
            Self { path }
        }

        /// The directory's path.
        #[must_use]
        pub fn path(&self) -> &Path {
            &self.path
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.path);
        }
    }
}

#[cfg(test)]
mod tests {
    use bytes::Bytes;
    use ripple_kv::{
        DurableStore, KvError, KvStore, PartId, RecoverableStore, RoutedKey, SyncPolicy, Table,
        TableSpec,
    };

    use crate::testutil::TempDir;
    use crate::DiskStore;

    fn key(route: u64, body: &str) -> RoutedKey {
        RoutedKey::with_route(route, Bytes::copy_from_slice(body.as_bytes()))
    }

    fn val(s: &str) -> Bytes {
        Bytes::copy_from_slice(s.as_bytes())
    }

    #[test]
    fn contents_survive_reopen() {
        let dir = TempDir::new("reopen");
        {
            let store = DiskStore::builder()
                .default_parts(3)
                .sync_policy(SyncPolicy::Always)
                .open(dir.path())
                .unwrap();
            let t = store.create_table(&TableSpec::new("t")).unwrap();
            for i in 0..20u64 {
                t.put(key(i, &format!("k{i}")), val(&format!("v{i}")))
                    .unwrap();
            }
            t.delete(&key(3, "k3")).unwrap();
        }
        let store = DiskStore::builder()
            .default_parts(3)
            .open(dir.path())
            .unwrap();
        assert!(store.recovery_report().is_empty());
        let t = store.lookup_table("t").unwrap();
        assert_eq!(t.part_count(), 3);
        assert_eq!(t.len().unwrap(), 19);
        assert_eq!(t.get(&key(7, "k7")).unwrap(), Some(val("v7")));
        assert_eq!(t.get(&key(3, "k3")).unwrap(), None);
        let m = store.metrics();
        assert!(m.replayed_records > 0, "reopen must replay the log");
    }

    #[test]
    fn unflushed_writes_vanish_like_a_crash() {
        let dir = TempDir::new("crash");
        {
            let store = DiskStore::builder()
                .sync_policy(SyncPolicy::Never)
                .open(dir.path())
                .unwrap();
            let t = store.create_table(&TableSpec::new("t")).unwrap();
            t.put(key(0, "durable"), val("1")).unwrap();
            store.flush().unwrap();
            t.put(key(0, "buffered"), val("2")).unwrap();
            // Dropped without flush: "buffered" never reached the file.
        }
        let store = DiskStore::open(dir.path()).unwrap();
        let t = store.lookup_table("t").unwrap();
        assert_eq!(t.get(&key(0, "durable")).unwrap(), Some(val("1")));
        assert_eq!(t.get(&key(0, "buffered")).unwrap(), None);
    }

    #[test]
    fn corrupt_tail_is_truncated_and_reported() {
        let dir = TempDir::new("torn");
        {
            let store = DiskStore::builder()
                .sync_policy(SyncPolicy::Always)
                .open(dir.path())
                .unwrap();
            let t = store.create_table(&TableSpec::new("t")).unwrap();
            t.put(key(0, "good"), val("1")).unwrap();
        }
        // Append garbage — a torn final record.
        let wal = dir.path().join("tables").join("t").join("p0000.wal.1");
        let mut bytes = std::fs::read(&wal).unwrap();
        bytes.extend_from_slice(&[0x55, 0xAA, 0x03]);
        std::fs::write(&wal, &bytes).unwrap();

        let store = DiskStore::open(dir.path()).unwrap();
        let report = store.recovery_report();
        assert_eq!(report.len(), 1);
        match &report[0] {
            KvError::WalTailDiscarded {
                table,
                part,
                valid_records,
                discarded_bytes,
            } => {
                assert_eq!(table, "t");
                assert_eq!(*part, 0);
                assert_eq!(*valid_records, 1);
                assert_eq!(*discarded_bytes, 3);
            }
            other => panic!("unexpected report entry: {other:?}"),
        }
        let t = store.lookup_table("t").unwrap();
        assert_eq!(t.get(&key(0, "good")).unwrap(), Some(val("1")));
        // The truncation is durable: a second open is clean.
        drop(t);
        drop(store);
        let store = DiskStore::open(dir.path()).unwrap();
        assert!(store.recovery_report().is_empty());
    }

    #[test]
    fn rewind_restores_the_barrier_cut_across_reopen() {
        let dir = TempDir::new("rewind");
        {
            let store = DiskStore::builder()
                .default_parts(2)
                .sync_policy(SyncPolicy::EveryN(4))
                .open(dir.path())
                .unwrap();
            let t = store.create_table(&TableSpec::new("state")).unwrap();
            t.put(key(0, "a"), val("pre")).unwrap();
            t.put(key(1, "b"), val("pre")).unwrap();
            store.commit_barrier(&t, 1).unwrap();
            store.flush().unwrap();
            // Mid-step writes after the barrier, flushed to disk so only
            // the rewind (not buffering) can remove them.
            t.put(key(0, "a"), val("post")).unwrap();
            t.put(key(1, "c"), val("post")).unwrap();
            store.flush().unwrap();
        }
        let store = DiskStore::builder()
            .default_parts(2)
            .open(dir.path())
            .unwrap();
        let t = store.lookup_table("state").unwrap();
        assert_eq!(t.len().unwrap(), 3, "before rewind the tail is visible");
        store.rewind_group(&t, 1).unwrap();
        assert_eq!(t.len().unwrap(), 2);
        assert_eq!(t.get(&key(0, "a")).unwrap(), Some(val("pre")));
        assert_eq!(t.get(&key(1, "c")).unwrap(), None);
        // Rewinding twice is idempotent: the cut itself ends at the marker.
        store.rewind_group(&t, 1).unwrap();
        assert_eq!(t.len().unwrap(), 2);
    }

    #[test]
    fn compaction_folds_logs_and_preserves_contents() {
        let dir = TempDir::new("compact");
        let store = DiskStore::builder()
            .sync_policy(SyncPolicy::Always)
            .snapshot_threshold(1) // compact at every opportunity
            .open(dir.path())
            .unwrap();
        let t = store.create_table(&TableSpec::new("t")).unwrap();
        for i in 0..10u64 {
            t.put(key(i, &format!("k{i}")), val("x")).unwrap();
        }
        store.commit_barrier(&t, 1).unwrap();
        store.compact_group(&t, 1).unwrap();
        // More writes after the snapshot land in the next generation.
        t.put(key(0, "late"), val("y")).unwrap();
        drop(t);
        drop(store);
        let store = DiskStore::open(dir.path()).unwrap();
        let t = store.lookup_table("t").unwrap();
        assert_eq!(t.len().unwrap(), 11);
        assert_eq!(t.get(&key(0, "late")).unwrap(), Some(val("y")));
        // And the snapshot still honours a rewind to its own epoch.
        store.rewind_group(&t, 1).unwrap();
        assert_eq!(t.len().unwrap(), 10);
    }

    #[test]
    fn copartitioning_survives_reopen() {
        let dir = TempDir::new("copart");
        {
            let store = DiskStore::builder()
                .default_parts(4)
                .open(dir.path())
                .unwrap();
            let a = store.create_table(&TableSpec::new("a")).unwrap();
            let b = store.create_table_like("b", &a).unwrap();
            assert_eq!(a.partitioning_id(), b.partitioning_id());
            let c = store.create_table(&TableSpec::new("c")).unwrap();
            assert_ne!(a.partitioning_id(), c.partitioning_id());
            store.drop_table("c").unwrap();
        }
        let store = DiskStore::builder()
            .default_parts(4)
            .open(dir.path())
            .unwrap();
        let a = store.lookup_table("a").unwrap();
        let b = store.lookup_table("b").unwrap();
        assert_eq!(a.partitioning_id(), b.partitioning_id());
        assert!(store.lookup_table("c").is_err());
        // The dropped table's id is never reused for a fresh group.
        let d = store.create_table(&TableSpec::new("d")).unwrap();
        assert_ne!(d.partitioning_id(), a.partitioning_id());
    }

    #[test]
    fn checkpoint_restore_writes_through_the_log() {
        let dir = TempDir::new("ckpt");
        {
            let store = DiskStore::builder()
                .default_parts(2)
                .sync_policy(SyncPolicy::Always)
                .open(dir.path())
                .unwrap();
            let t = store.create_table(&TableSpec::new("t")).unwrap();
            t.put(key(0, "keep"), val("1")).unwrap();
            let cp = store.checkpoint_part(&t, PartId(0)).unwrap();
            assert_eq!(cp.entry_count(), 1);
            t.put(key(0, "drop-me"), val("2")).unwrap();
            store.restore_part(&cp).unwrap();
            assert_eq!(t.len().unwrap(), 1);
        }
        // The restore itself must be durable.
        let store = DiskStore::open(dir.path()).unwrap();
        let t = store.lookup_table("t").unwrap();
        assert_eq!(t.len().unwrap(), 1);
        assert_eq!(t.get(&key(0, "keep")).unwrap(), Some(val("1")));
    }

    #[test]
    fn table_names_are_escaped_on_disk() {
        let dir = TempDir::new("escape");
        let store = DiskStore::open(dir.path()).unwrap();
        let t = store
            .create_table(&TableSpec::new("__ebsp_xport_1/..x"))
            .unwrap();
        t.put(key(0, "k"), val("v")).unwrap();
        store.flush().unwrap();
        // Whatever the name, its directory stays under tables/.
        let tables_root = dir.path().join("tables");
        let entries: Vec<_> = std::fs::read_dir(&tables_root)
            .unwrap()
            .map(|e| e.unwrap().path())
            .collect();
        assert_eq!(entries.len(), 1);
        assert!(entries[0].starts_with(&tables_root));
        drop(t);
        drop(store);
        let store = DiskStore::open(dir.path()).unwrap();
        let t = store.lookup_table("__ebsp_xport_1/..x").unwrap();
        assert_eq!(t.get(&key(0, "k")).unwrap(), Some(val("v")));
    }
}
