//! Per-shard write-ahead logging: record codec, buffered appends with a
//! configurable fsync policy, replay, snapshot compaction, and
//! barrier-targeted rewind.
//!
//! Each shard (one part of one table) owns a family of files inside its
//! table's directory:
//!
//! ```text
//! pNNNN.wal.<gen>    append-only log of framed records (generation <gen>)
//! pNNNN.snap.<gen>   snapshot folding every log generation <= <gen>
//! ```
//!
//! A snapshot is written under a temporary name, fsynced, renamed into
//! place, and only then are the folded logs deleted; the current log
//! generation is then `<gen> + 1`.  Opening a shard therefore loads the
//! newest snapshot (if any) and replays only log generations greater than
//! the snapshot's.  Every crash interleaving of that protocol resolves to
//! a consistent state under the same rule.

use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};

use bytes::Bytes;
use ripple_kv::{KvError, RoutedKey, SyncPolicy};
use ripple_wire::{
    read_frame, write_frame, ByteReader, ByteWriter, Decode, Encode, FrameRead, WireError,
};

/// One logged mutation (or barrier marker) of a shard.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum WalRecord {
    /// A key was inserted or overwritten.
    Put {
        /// The written key.
        key: RoutedKey,
        /// The written value.
        value: Bytes,
    },
    /// A key was removed.
    Delete {
        /// The removed key.
        key: RoutedKey,
    },
    /// The whole shard was cleared.
    Clear,
    /// A durable barrier was committed at this point in the log.
    Barrier {
        /// The barrier's epoch (the engine's step number).
        epoch: u64,
    },
}

const TAG_PUT: u8 = 1;
const TAG_DELETE: u8 = 2;
const TAG_CLEAR: u8 = 3;
const TAG_BARRIER: u8 = 4;

pub(crate) fn encode_record(rec: &WalRecord) -> Vec<u8> {
    let mut w = ByteWriter::new();
    match rec {
        WalRecord::Put { key, value } => {
            w.push(TAG_PUT);
            key.encode(&mut w);
            value.encode(&mut w);
        }
        WalRecord::Delete { key } => {
            w.push(TAG_DELETE);
            key.encode(&mut w);
        }
        WalRecord::Clear => w.push(TAG_CLEAR),
        WalRecord::Barrier { epoch } => {
            w.push(TAG_BARRIER);
            epoch.encode(&mut w);
        }
    }
    w.into_vec()
}

pub(crate) fn decode_record(payload: &[u8]) -> Result<WalRecord, WireError> {
    let mut r = ByteReader::new(payload);
    let rec = match r.read_byte()? {
        TAG_PUT => WalRecord::Put {
            key: RoutedKey::decode(&mut r)?,
            value: Bytes::decode(&mut r)?,
        },
        TAG_DELETE => WalRecord::Delete {
            key: RoutedKey::decode(&mut r)?,
        },
        TAG_CLEAR => WalRecord::Clear,
        TAG_BARRIER => WalRecord::Barrier {
            epoch: u64::decode(&mut r)?,
        },
        other => {
            return Err(WireError::InvalidTag {
                target: "wal record",
                tag: other,
            })
        }
    };
    if !r.is_empty() {
        return Err(WireError::TrailingBytes {
            remaining: r.remaining(),
        });
    }
    Ok(rec)
}

/// Wraps an I/O error with enough context to debug a broken directory.
pub(crate) fn io_err(context: &str, path: &Path, e: &std::io::Error) -> KvError {
    KvError::Backend {
        detail: format!("{context} {}: {e}", path.display()),
    }
}

/// Counters a [`WalWriter`] reports physical activity into.
pub(crate) trait WalSink {
    /// `bytes` were appended to a log or snapshot file of `part`.
    fn wal_bytes(&self, part: u32, bytes: u64);
    /// One `fsync`-class flush was issued for `part`.
    fn fsync(&self, part: u32);
    /// `records` log records were replayed into the memtable of `part`.
    fn replayed(&self, part: u32, records: u64);
}

/// The buffered appender for one shard's current log generation.
///
/// Records accumulate in a userspace buffer; nothing reaches the file (or
/// the disk) until a policy point, an explicit flush, or a barrier
/// commit.  Dropping the writer drops the buffer — deliberately, so that
/// dropping the store without flushing models a hard crash.
#[derive(Debug)]
pub(crate) struct WalWriter {
    table_dir: PathBuf,
    part: u32,
    /// Current log generation.
    pub(crate) gen: u64,
    buf: Vec<u8>,
    /// Records appended since the last policy fsync (for `EveryN`).
    pending: u32,
    /// Bytes already written to the current log file.
    pub(crate) file_bytes: u64,
    /// Whether written file bytes are not yet known to be fsynced.
    unsynced_file: bool,
}

impl WalWriter {
    pub(crate) fn new(table_dir: PathBuf, part: u32, gen: u64, file_bytes: u64) -> Self {
        Self {
            table_dir,
            part,
            gen,
            buf: Vec::new(),
            pending: 0,
            file_bytes,
            // Replayed bytes may predate a crash-unsynced write; one
            // conservative fsync at the first flush costs little.
            unsynced_file: file_bytes > 0,
        }
    }

    pub(crate) fn wal_path(table_dir: &Path, part: u32, gen: u64) -> PathBuf {
        table_dir.join(format!("p{part:04}.wal.{gen}"))
    }

    pub(crate) fn snap_path(table_dir: &Path, part: u32, gen: u64) -> PathBuf {
        table_dir.join(format!("p{part:04}.snap.{gen}"))
    }

    fn current_path(&self) -> PathBuf {
        Self::wal_path(&self.table_dir, self.part, self.gen)
    }

    /// Buffers one record.  Nothing touches the file system here.
    pub(crate) fn append(&mut self, rec: &WalRecord) {
        write_frame(&mut self.buf, &encode_record(rec));
        self.pending += 1;
    }

    /// Unwritten buffered bytes (for compaction thresholds).
    pub(crate) fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Writes buffered bytes to the current log file and optionally
    /// fsyncs it.  No-op when there is nothing buffered and nothing
    /// unsynced.
    pub(crate) fn write_out(&mut self, fsync: bool, sink: &dyn WalSink) -> Result<(), KvError> {
        if self.buf.is_empty() && !(fsync && self.unsynced_file) {
            return Ok(());
        }
        let path = self.current_path();
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .map_err(|e| io_err("open wal", &path, &e))?;
        if !self.buf.is_empty() {
            (&file)
                .write_all(&self.buf)
                .map_err(|e| io_err("append wal", &path, &e))?;
            sink.wal_bytes(self.part, self.buf.len() as u64);
            self.file_bytes += self.buf.len() as u64;
            self.buf.clear();
            self.unsynced_file = true;
        }
        self.pending = 0;
        if fsync {
            file.sync_data()
                .map_err(|e| io_err("fsync wal", &path, &e))?;
            sink.fsync(self.part);
            self.unsynced_file = false;
        }
        Ok(())
    }

    /// Starts the next log generation after a snapshot folded this one.
    /// Buffered bytes are discarded: the snapshot captured their effects
    /// from the memtable.
    pub(crate) fn reset_after_snapshot(&mut self) {
        self.gen += 1;
        self.buf.clear();
        self.pending = 0;
        self.file_bytes = 0;
        self.unsynced_file = false;
    }

    /// Applies the store's fsync policy after one buffered mutation.
    pub(crate) fn after_mutation(
        &mut self,
        policy: SyncPolicy,
        sink: &dyn WalSink,
    ) -> Result<(), KvError> {
        match policy {
            SyncPolicy::Always => self.write_out(true, sink),
            SyncPolicy::EveryN(n) => {
                if self.pending >= n.max(1) {
                    self.write_out(true, sink)
                } else {
                    Ok(())
                }
            }
            SyncPolicy::Never => Ok(()),
        }
    }
}

/// The durable files belonging to one shard, sorted by generation.
#[derive(Debug, Default)]
pub(crate) struct ShardFiles {
    /// Newest snapshot, if any.
    pub(crate) snap: Option<(u64, PathBuf)>,
    /// Log files with generations beyond the newest snapshot, ascending.
    pub(crate) wals: Vec<(u64, PathBuf)>,
    /// Superseded files (older snapshots, logs folded into the snapshot):
    /// left over only when a crash interrupted compaction cleanup.
    pub(crate) stale: Vec<PathBuf>,
}

/// Scans `table_dir` for the files of `part`.
pub(crate) fn list_shard_files(table_dir: &Path, part: u32) -> Result<ShardFiles, KvError> {
    let mut snaps: Vec<(u64, PathBuf)> = Vec::new();
    let mut wals: Vec<(u64, PathBuf)> = Vec::new();
    let wal_prefix = format!("p{part:04}.wal.");
    let snap_prefix = format!("p{part:04}.snap.");
    let entries = std::fs::read_dir(table_dir).map_err(|e| io_err("read dir", table_dir, &e))?;
    for entry in entries {
        let entry = entry.map_err(|e| io_err("read dir", table_dir, &e))?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if let Some(gen) = name.strip_prefix(&wal_prefix).and_then(|g| g.parse().ok()) {
            wals.push((gen, entry.path()));
        } else if let Some(gen) = name.strip_prefix(&snap_prefix).and_then(|g| g.parse().ok()) {
            snaps.push((gen, entry.path()));
        }
    }
    snaps.sort_by_key(|(g, _)| *g);
    wals.sort_by_key(|(g, _)| *g);
    let snap = snaps.pop();
    let snap_gen = snap.as_ref().map_or(0, |(g, _)| *g);
    let mut stale: Vec<PathBuf> = snaps.into_iter().map(|(_, p)| p).collect();
    let mut live_wals = Vec::new();
    for (gen, path) in wals {
        if snap.is_some() && gen <= snap_gen {
            stale.push(path);
        } else {
            live_wals.push((gen, path));
        }
    }
    Ok(ShardFiles {
        snap,
        wals: live_wals,
        stale,
    })
}

/// The result of replaying one shard from disk.
pub(crate) struct ReplayedShard {
    pub(crate) map: HashMap<RoutedKey, Bytes>,
    pub(crate) writer: WalWriter,
    /// A [`KvError::WalTailDiscarded`] note when the log's tail was torn
    /// or corrupt and had to be truncated.
    pub(crate) tail_note: Option<KvError>,
}

/// Reads a snapshot file: `(barrier epoch, entries)`.
pub(crate) fn read_snapshot(path: &Path) -> Result<(u64, HashMap<RoutedKey, Bytes>), KvError> {
    let bytes = std::fs::read(path).map_err(|e| io_err("read snapshot", path, &e))?;
    let corrupt = || KvError::Backend {
        detail: format!("corrupt snapshot {}", path.display()),
    };
    let mut offset = 0usize;
    let FrameRead::Frame { payload, next } = read_frame(&bytes, offset) else {
        return Err(corrupt());
    };
    let mut r = ByteReader::new(payload);
    let epoch = u64::decode(&mut r).map_err(|_| corrupt())?;
    let count = u64::decode(&mut r).map_err(|_| corrupt())?;
    offset = next;
    let mut map = HashMap::with_capacity(usize::try_from(count).unwrap_or(0));
    for _ in 0..count {
        let FrameRead::Frame { payload, next } = read_frame(&bytes, offset) else {
            return Err(corrupt());
        };
        let mut r = ByteReader::new(payload);
        let key = RoutedKey::decode(&mut r).map_err(|_| corrupt())?;
        let value = Bytes::decode(&mut r).map_err(|_| corrupt())?;
        map.insert(key, value);
        offset = next;
    }
    Ok((epoch, map))
}

/// Writes a snapshot of `map` at barrier `epoch`, durably: temp file,
/// fsync, rename, directory fsync.  Returns the snapshot's byte size.
pub(crate) fn write_snapshot(
    table_dir: &Path,
    part: u32,
    gen: u64,
    epoch: u64,
    map: &HashMap<RoutedKey, Bytes>,
    sink: &dyn WalSink,
) -> Result<u64, KvError> {
    let mut out = Vec::new();
    let mut header = ByteWriter::new();
    epoch.encode(&mut header);
    (map.len() as u64).encode(&mut header);
    write_frame(&mut out, header.as_slice());
    for (key, value) in map {
        let mut w = ByteWriter::with_capacity(key.body().len() + value.len() + 16);
        key.encode(&mut w);
        value.encode(&mut w);
        write_frame(&mut out, w.as_slice());
    }
    let tmp = table_dir.join(format!("p{part:04}.snap.tmp"));
    let final_path = WalWriter::snap_path(table_dir, part, gen);
    {
        let mut file = File::create(&tmp).map_err(|e| io_err("create snapshot", &tmp, &e))?;
        file.write_all(&out)
            .map_err(|e| io_err("write snapshot", &tmp, &e))?;
        file.sync_data()
            .map_err(|e| io_err("fsync snapshot", &tmp, &e))?;
        sink.fsync(part);
    }
    std::fs::rename(&tmp, &final_path).map_err(|e| io_err("rename snapshot", &tmp, &e))?;
    sync_dir(table_dir, sink, part)?;
    Ok(out.len() as u64)
}

/// Fsyncs a directory so a rename/unlink within it is durable.
pub(crate) fn sync_dir(dir: &Path, sink: &dyn WalSink, part: u32) -> Result<(), KvError> {
    let handle = File::open(dir).map_err(|e| io_err("open dir", dir, &e))?;
    handle
        .sync_all()
        .map_err(|e| io_err("fsync dir", dir, &e))?;
    sink.fsync(part);
    Ok(())
}

/// Rebuilds one shard from its snapshot and logs.
///
/// A torn or corrupt log tail is truncated off the file and reported via
/// `tail_note`; everything up to it replays.  Logs that should not exist
/// (generations beyond a truncated one) are removed so a future replay
/// cannot apply them out of order.
pub(crate) fn replay_shard(
    table_dir: &Path,
    table_name: &str,
    part: u32,
    sink: &dyn WalSink,
) -> Result<ReplayedShard, KvError> {
    let files = list_shard_files(table_dir, part)?;
    for path in &files.stale {
        std::fs::remove_file(path).map_err(|e| io_err("remove stale", path, &e))?;
    }
    let mut map = HashMap::new();
    let mut snap_gen = 0u64;
    if let Some((gen, path)) = &files.snap {
        let (_, entries) = read_snapshot(path)?;
        sink.replayed(part, entries.len() as u64);
        map = entries;
        snap_gen = *gen;
    }
    let mut gen = snap_gen.max(1);
    let mut file_bytes = 0u64;
    let mut tail_note = None;
    let mut truncated_at: Option<usize> = None;
    for (i, (wal_gen, path)) in files.wals.iter().enumerate() {
        let bytes = std::fs::read(path).map_err(|e| io_err("read wal", path, &e))?;
        let mut offset = 0usize;
        let mut valid = 0u64;
        while let FrameRead::Frame { payload, next } = read_frame(&bytes, offset) {
            let Ok(rec) = decode_record(payload) else {
                break;
            };
            apply_record(&mut map, rec);
            valid += 1;
            offset = next;
        }
        sink.replayed(part, valid);
        gen = *wal_gen;
        if offset < bytes.len() {
            // Damaged tail: truncate the file there and stop replaying.
            let file = OpenOptions::new()
                .write(true)
                .open(path)
                .map_err(|e| io_err("open wal", path, &e))?;
            file.set_len(offset as u64)
                .map_err(|e| io_err("truncate wal", path, &e))?;
            file.sync_data()
                .map_err(|e| io_err("fsync wal", path, &e))?;
            sink.fsync(part);
            tail_note = Some(KvError::WalTailDiscarded {
                table: table_name.to_owned(),
                part,
                valid_records: valid,
                discarded_bytes: (bytes.len() - offset) as u64,
            });
            file_bytes = offset as u64;
            truncated_at = Some(i);
            break;
        }
        file_bytes = bytes.len() as u64;
    }
    if let Some(i) = truncated_at {
        // Log generations beyond a damaged one cannot exist under the
        // compaction protocol; if a broken tool left some, drop them.
        for (_, path) in &files.wals[i + 1..] {
            std::fs::remove_file(path).map_err(|e| io_err("remove wal", path, &e))?;
        }
    }
    if files.wals.is_empty() && files.snap.is_some() {
        // Compaction folded every log; the writer starts the next
        // generation.
        gen = snap_gen + 1;
        file_bytes = 0;
    }
    Ok(ReplayedShard {
        map,
        writer: WalWriter::new(table_dir.to_owned(), part, gen, file_bytes),
        tail_note,
    })
}

pub(crate) fn apply_record(map: &mut HashMap<RoutedKey, Bytes>, rec: WalRecord) {
    match rec {
        WalRecord::Put { key, value } => {
            map.insert(key, value);
        }
        WalRecord::Delete { key } => {
            map.remove(&key);
        }
        WalRecord::Clear => map.clear(),
        WalRecord::Barrier { .. } => {}
    }
}

/// Rebuilds one shard to its exact state at the barrier marker for
/// `epoch`, truncating everything after the marker off the durable log
/// and returning the rebuilt memtable and writer.
///
/// Callers guarantee `epoch` was committed (its markers written and
/// synced) before the resume journal pointed at it, so either the marker
/// is in a live log or the newest snapshot *is* the barrier state.
pub(crate) fn rewind_shard(
    table_dir: &Path,
    table_name: &str,
    part: u32,
    epoch: u64,
    sink: &dyn WalSink,
) -> Result<(HashMap<RoutedKey, Bytes>, WalWriter), KvError> {
    let files = list_shard_files(table_dir, part)?;
    for path in &files.stale {
        std::fs::remove_file(path).map_err(|e| io_err("remove stale", path, &e))?;
    }
    let mut map = HashMap::new();
    let mut snap_gen = 0u64;
    let mut snap_epoch = None;
    if let Some((gen, path)) = &files.snap {
        let (e, entries) = read_snapshot(path)?;
        if e > epoch {
            return Err(KvError::Backend {
                detail: format!(
                    "table {table_name:?} part {part}: snapshot at epoch {e} is past the \
                     rewind target {epoch}"
                ),
            });
        }
        sink.replayed(part, entries.len() as u64);
        map = entries;
        snap_gen = *gen;
        snap_epoch = Some(e);
    }
    for (i, (wal_gen, path)) in files.wals.iter().enumerate() {
        let bytes = std::fs::read(path).map_err(|e| io_err("read wal", path, &e))?;
        let mut offset = 0usize;
        let mut cut = None;
        while let FrameRead::Frame { payload, next } = read_frame(&bytes, offset) {
            let Ok(rec) = decode_record(payload) else {
                break;
            };
            let barrier_hit = matches!(&rec, WalRecord::Barrier { epoch: e } if *e == epoch);
            apply_record(&mut map, rec);
            offset = next;
            if barrier_hit {
                cut = Some(offset);
                break;
            }
        }
        if let Some(cut) = cut {
            // Truncate this file at the marker and drop later generations.
            let file = OpenOptions::new()
                .write(true)
                .open(path)
                .map_err(|e| io_err("open wal", path, &e))?;
            file.set_len(cut as u64)
                .map_err(|e| io_err("truncate wal", path, &e))?;
            file.sync_data()
                .map_err(|e| io_err("fsync wal", path, &e))?;
            sink.fsync(part);
            for (_, later) in &files.wals[i + 1..] {
                std::fs::remove_file(later).map_err(|e| io_err("remove wal", later, &e))?;
            }
            return Ok((
                map,
                WalWriter::new(table_dir.to_owned(), part, *wal_gen, cut as u64),
            ));
        }
    }
    if snap_epoch == Some(epoch) {
        // The snapshot *is* the barrier state (a crash interrupted
        // compaction cleanup); drop every post-snapshot log byte.
        let (_, entries) = read_snapshot(&files.snap.as_ref().expect("snap checked").1)?;
        for (_, path) in &files.wals {
            std::fs::remove_file(path).map_err(|e| io_err("remove wal", path, &e))?;
        }
        return Ok((
            entries,
            WalWriter::new(table_dir.to_owned(), part, snap_gen + 1, 0),
        ));
    }
    Err(KvError::Backend {
        detail: format!(
            "table {table_name:?} part {part}: no barrier marker for epoch {epoch} in the \
             durable log"
        ),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    struct NullSink;
    impl WalSink for NullSink {
        fn wal_bytes(&self, _: u32, _: u64) {}
        fn fsync(&self, _: u32) {}
        fn replayed(&self, _: u32, _: u64) {}
    }

    fn key(route: u64, body: &str) -> RoutedKey {
        RoutedKey::with_route(route, Bytes::copy_from_slice(body.as_bytes()))
    }

    #[test]
    fn records_roundtrip() {
        for rec in [
            WalRecord::Put {
                key: key(3, "k"),
                value: Bytes::from_static(b"v"),
            },
            WalRecord::Delete {
                key: key(9, "gone"),
            },
            WalRecord::Clear,
            WalRecord::Barrier { epoch: 42 },
        ] {
            assert_eq!(decode_record(&encode_record(&rec)).unwrap(), rec);
        }
    }

    #[test]
    fn writer_replay_roundtrip() {
        let dir = crate::testutil::TempDir::new("wal-roundtrip");
        let mut w = WalWriter::new(dir.path().to_owned(), 0, 1, 0);
        w.append(&WalRecord::Put {
            key: key(0, "a"),
            value: Bytes::from_static(b"1"),
        });
        w.append(&WalRecord::Put {
            key: key(0, "b"),
            value: Bytes::from_static(b"2"),
        });
        w.append(&WalRecord::Delete { key: key(0, "a") });
        w.write_out(true, &NullSink).unwrap();
        let replayed = replay_shard(dir.path(), "t", 0, &NullSink).unwrap();
        assert!(replayed.tail_note.is_none());
        assert_eq!(replayed.map.len(), 1);
        assert_eq!(
            replayed.map.get(&key(0, "b")),
            Some(&Bytes::from_static(b"2"))
        );
    }

    #[test]
    fn rewind_cuts_past_the_barrier() {
        let dir = crate::testutil::TempDir::new("wal-rewind");
        let mut w = WalWriter::new(dir.path().to_owned(), 2, 1, 0);
        w.append(&WalRecord::Put {
            key: key(2, "committed"),
            value: Bytes::from_static(b"1"),
        });
        w.append(&WalRecord::Barrier { epoch: 7 });
        w.append(&WalRecord::Put {
            key: key(2, "mid-step"),
            value: Bytes::from_static(b"2"),
        });
        w.write_out(true, &NullSink).unwrap();
        let (map, writer) = rewind_shard(dir.path(), "t", 2, 7, &NullSink).unwrap();
        assert_eq!(map.len(), 1);
        assert!(map.contains_key(&key(2, "committed")));
        // The mid-step record is gone from the durable log too.
        assert!(
            writer.file_bytes
                < std::fs::metadata(WalWriter::wal_path(dir.path(), 2, 1))
                    .map(|m| m.len() + 1)
                    .unwrap()
        );
        let replayed = replay_shard(dir.path(), "t", 2, &NullSink).unwrap();
        assert_eq!(replayed.map.len(), 1);
    }

    #[test]
    fn rewind_without_marker_fails() {
        let dir = crate::testutil::TempDir::new("wal-nomarker");
        let mut w = WalWriter::new(dir.path().to_owned(), 0, 1, 0);
        w.append(&WalRecord::Put {
            key: key(0, "x"),
            value: Bytes::from_static(b"1"),
        });
        w.write_out(true, &NullSink).unwrap();
        assert!(rewind_shard(dir.path(), "t", 0, 3, &NullSink).is_err());
    }

    #[test]
    fn snapshot_roundtrip_and_replay_after_compaction() {
        let dir = crate::testutil::TempDir::new("wal-snap");
        let mut map = HashMap::new();
        map.insert(key(0, "a"), Bytes::from_static(b"1"));
        map.insert(key(0, "b"), Bytes::from_static(b"2"));
        write_snapshot(dir.path(), 0, 3, 11, &map, &NullSink).unwrap();
        let (epoch, back) = read_snapshot(&WalWriter::snap_path(dir.path(), 0, 3)).unwrap();
        assert_eq!(epoch, 11);
        assert_eq!(back, map);
        let replayed = replay_shard(dir.path(), "t", 0, &NullSink).unwrap();
        assert_eq!(replayed.map, map);
        assert_eq!(replayed.writer.gen, 4);
    }
}
