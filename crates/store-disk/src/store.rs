//! The durable partitioned store: catalog, tables, shards, part views,
//! and the [`KvStore`] implementation.

use std::collections::HashMap;
use std::fmt::Write as _;
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use bytes::Bytes;
use crossbeam::channel::bounded;
use parking_lot::{Mutex, RwLock};
use ripple_kv::{
    KvError, KvStore, PartId, PartView, RoutedKey, ScanControl, StoreMetrics, SyncPolicy, Table,
    TableSpec, TaskHandle,
};
use ripple_wire::{read_frame, write_frame, ByteReader, ByteWriter, Decode, Encode, FrameRead};

use crate::wal::{io_err, replay_shard, WalRecord, WalSink, WalWriter};

/// Escapes a table name into a file-system-safe directory name.
///
/// Bytes outside `[A-Za-z0-9_-]` become `%XX`, which also rules out path
/// separators and the `.`/`..` special names.
pub(crate) fn escape_table_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for b in name.bytes() {
        if b.is_ascii_alphanumeric() || b == b'_' || b == b'-' {
            out.push(b as char);
        } else {
            let _ = write!(out, "%{b:02X}");
        }
    }
    out
}

/// Per-scope operation counters (one global set plus one per part).
#[derive(Debug, Default)]
pub(crate) struct Cells {
    ops: AtomicU64,
    tasks: AtomicU64,
    enumerations: AtomicU64,
    wal_bytes: AtomicU64,
    fsyncs: AtomicU64,
    replayed: AtomicU64,
}

impl Cells {
    fn snapshot(&self) -> StoreMetrics {
        StoreMetrics {
            local_ops: self.ops.load(Ordering::Relaxed),
            remote_ops: 0,
            bytes_marshalled: 0,
            tasks_dispatched: self.tasks.load(Ordering::Relaxed),
            enumerations: self.enumerations.load(Ordering::Relaxed),
            wal_bytes: self.wal_bytes.load(Ordering::Relaxed),
            fsyncs: self.fsyncs.load(Ordering::Relaxed),
            replayed_records: self.replayed.load(Ordering::Relaxed),
            ..StoreMetrics::default()
        }
    }
}

/// One part of one table: its memtable plus its log writer.
#[derive(Debug)]
pub(crate) struct Shard {
    pub(crate) map: HashMap<RoutedKey, Bytes>,
    pub(crate) wal: WalWriter,
}

#[derive(Debug)]
pub(crate) struct TableInner {
    pub(crate) name: String,
    pub(crate) parts: u32,
    pub(crate) ubiquitous: bool,
    pub(crate) partitioning_id: u64,
    pub(crate) dir: PathBuf,
    pub(crate) shards: Vec<Mutex<Shard>>,
    dropped: AtomicBool,
}

impl TableInner {
    pub(crate) fn check_live(&self) -> Result<(), KvError> {
        if self.dropped.load(Ordering::Acquire) {
            return Err(KvError::TableDropped {
                name: self.name.clone(),
            });
        }
        Ok(())
    }
}

const CAT_CREATE: u8 = 1;
const CAT_DROP: u8 = 2;

#[derive(Debug, Clone, Copy)]
struct CatalogMeta {
    parts: u32,
    ubiquitous: bool,
    partitioning_id: u64,
}

pub(crate) struct Inner {
    dir: PathBuf,
    pub(crate) policy: SyncPolicy,
    pub(crate) snapshot_threshold: u64,
    pub(crate) tables: RwLock<HashMap<String, Arc<TableInner>>>,
    /// The open catalog log; every create/drop appends a frame and fsyncs
    /// before the in-memory table map changes.
    catalog: Mutex<File>,
    next_partitioning: AtomicU64,
    cells: Cells,
    part_cells: RwLock<Vec<Arc<Cells>>>,
    /// Notes collected while opening: one [`KvError::WalTailDiscarded`]
    /// per shard (or catalog) whose damaged log tail was truncated.
    recovery: Mutex<Vec<KvError>>,
}

impl std::fmt::Debug for Inner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Inner")
            .field("dir", &self.dir)
            .field("policy", &self.policy)
            .finish_non_exhaustive()
    }
}

impl WalSink for Inner {
    fn wal_bytes(&self, part: u32, bytes: u64) {
        self.cells.wal_bytes.fetch_add(bytes, Ordering::Relaxed);
        self.part_cell(part)
            .wal_bytes
            .fetch_add(bytes, Ordering::Relaxed);
    }
    fn fsync(&self, part: u32) {
        self.cells.fsyncs.fetch_add(1, Ordering::Relaxed);
        self.part_cell(part).fsyncs.fetch_add(1, Ordering::Relaxed);
    }
    fn replayed(&self, part: u32, records: u64) {
        self.cells.replayed.fetch_add(records, Ordering::Relaxed);
        self.part_cell(part)
            .replayed
            .fetch_add(records, Ordering::Relaxed);
    }
}

impl Inner {
    pub(crate) fn part_cell(&self, part: u32) -> Arc<Cells> {
        let idx = part as usize;
        {
            let cells = self.part_cells.read();
            if let Some(c) = cells.get(idx) {
                return Arc::clone(c);
            }
        }
        let mut cells = self.part_cells.write();
        while cells.len() <= idx {
            cells.push(Arc::new(Cells::default()));
        }
        Arc::clone(&cells[idx])
    }

    fn count_op(&self, part: u32) {
        self.cells.ops.fetch_add(1, Ordering::Relaxed);
        self.part_cell(part).ops.fetch_add(1, Ordering::Relaxed);
    }

    fn count_enumeration(&self, part: u32) {
        self.cells.enumerations.fetch_add(1, Ordering::Relaxed);
        self.part_cell(part)
            .enumerations
            .fetch_add(1, Ordering::Relaxed);
    }

    fn table(&self, name: &str) -> Result<Arc<TableInner>, KvError> {
        self.tables
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| KvError::NoSuchTable {
                name: name.to_owned(),
            })
    }

    fn catalog_path(dir: &Path) -> PathBuf {
        dir.join("catalog.wal")
    }

    fn tables_dir(dir: &Path) -> PathBuf {
        dir.join("tables")
    }

    /// Appends one catalog record durably.  Catalog traffic is counted
    /// store-wide only (it belongs to no part).
    fn catalog_append(&self, payload: &[u8]) -> Result<(), KvError> {
        let mut framed = Vec::new();
        write_frame(&mut framed, payload);
        let file = self.catalog.lock();
        let path = Self::catalog_path(&self.dir);
        (&*file)
            .write_all(&framed)
            .map_err(|e| io_err("append catalog", &path, &e))?;
        file.sync_data()
            .map_err(|e| io_err("fsync catalog", &path, &e))?;
        self.cells
            .wal_bytes
            .fetch_add(framed.len() as u64, Ordering::Relaxed);
        self.cells.fsyncs.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    fn catalog_create(&self, name: &str, meta: CatalogMeta) -> Result<(), KvError> {
        let mut w = ByteWriter::new();
        w.push(CAT_CREATE);
        name.encode(&mut w);
        meta.parts.encode(&mut w);
        w.push(u8::from(meta.ubiquitous));
        meta.partitioning_id.encode(&mut w);
        self.catalog_append(w.as_slice())
    }

    fn catalog_drop(&self, name: &str) -> Result<(), KvError> {
        let mut w = ByteWriter::new();
        w.push(CAT_DROP);
        name.encode(&mut w);
        self.catalog_append(w.as_slice())
    }
}

/// Builds a [`DiskStore`] with explicit policies.
#[derive(Debug, Clone)]
pub struct DiskStoreBuilder {
    default_parts: u32,
    sync_policy: SyncPolicy,
    snapshot_threshold: u64,
}

impl Default for DiskStoreBuilder {
    fn default() -> Self {
        Self {
            default_parts: 1,
            sync_policy: SyncPolicy::EveryN(64),
            snapshot_threshold: 64 * 1024,
        }
    }
}

impl DiskStoreBuilder {
    /// Part count for tables whose spec does not pin one.
    ///
    /// # Panics
    ///
    /// Panics if `parts` is zero.
    #[must_use]
    pub fn default_parts(mut self, parts: u32) -> Self {
        assert!(parts > 0, "a store needs at least one part");
        self.default_parts = parts;
        self
    }

    /// When ordinary mutations force their log bytes to disk.
    #[must_use]
    pub fn sync_policy(mut self, policy: SyncPolicy) -> Self {
        self.sync_policy = policy;
        self
    }

    /// Log size (bytes, per shard) past which a barrier-time compaction
    /// folds the log into a snapshot.
    #[must_use]
    pub fn snapshot_threshold(mut self, bytes: u64) -> Self {
        self.snapshot_threshold = bytes;
        self
    }

    /// Opens (creating if needed) the store rooted at `dir`, replaying the
    /// catalog and every shard log.
    ///
    /// # Errors
    ///
    /// Fails if the directory cannot be created or a durable file is
    /// damaged beyond the tolerated torn-tail cases.
    pub fn open(self, dir: impl AsRef<Path>) -> Result<DiskStore, KvError> {
        let dir = dir.as_ref().to_owned();
        std::fs::create_dir_all(&dir).map_err(|e| io_err("create dir", &dir, &e))?;
        let tables_dir = Inner::tables_dir(&dir);
        std::fs::create_dir_all(&tables_dir).map_err(|e| io_err("create dir", &tables_dir, &e))?;

        let mut recovery = Vec::new();
        let catalog_entries = replay_catalog(&dir, &mut recovery)?;
        let catalog_file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(Inner::catalog_path(&dir))
            .map_err(|e| io_err("open catalog", &Inner::catalog_path(&dir), &e))?;
        let next_partitioning = catalog_entries
            .values()
            .map(|m| m.partitioning_id + 1)
            .max()
            .unwrap_or(1)
            .max(1);

        let inner = Arc::new(Inner {
            dir,
            policy: self.sync_policy,
            snapshot_threshold: self.snapshot_threshold,
            tables: RwLock::new(HashMap::new()),
            catalog: Mutex::new(catalog_file),
            next_partitioning: AtomicU64::new(next_partitioning),
            cells: Cells::default(),
            part_cells: RwLock::new(Vec::new()),
            recovery: Mutex::new(Vec::new()),
        });

        let mut live_dirs = std::collections::HashSet::new();
        {
            let mut tables = inner.tables.write();
            for (name, meta) in &catalog_entries {
                let table_path = tables_dir.join(escape_table_name(name));
                std::fs::create_dir_all(&table_path)
                    .map_err(|e| io_err("create dir", &table_path, &e))?;
                live_dirs.insert(table_path.clone());
                let mut shards = Vec::with_capacity(meta.parts as usize);
                for part in 0..meta.parts {
                    let replayed = replay_shard(&table_path, name, part, &*inner)?;
                    if let Some(note) = replayed.tail_note {
                        recovery.push(note);
                    }
                    shards.push(Mutex::new(Shard {
                        map: replayed.map,
                        wal: replayed.writer,
                    }));
                }
                tables.insert(
                    name.clone(),
                    Arc::new(TableInner {
                        name: name.clone(),
                        parts: meta.parts,
                        ubiquitous: meta.ubiquitous,
                        partitioning_id: meta.partitioning_id,
                        dir: table_path,
                        shards,
                        dropped: AtomicBool::new(false),
                    }),
                );
            }
        }
        // A crash between the catalog's drop record and the directory
        // removal leaves an orphaned table directory; collect it now.
        let entries =
            std::fs::read_dir(&tables_dir).map_err(|e| io_err("read dir", &tables_dir, &e))?;
        for entry in entries {
            let entry = entry.map_err(|e| io_err("read dir", &tables_dir, &e))?;
            let path = entry.path();
            if path.is_dir() && !live_dirs.contains(&path) {
                std::fs::remove_dir_all(&path).map_err(|e| io_err("remove dir", &path, &e))?;
            }
        }
        *inner.recovery.lock() = recovery;
        Ok(DiskStore {
            inner,
            default_parts: self.default_parts,
        })
    }
}

fn replay_catalog(
    dir: &Path,
    recovery: &mut Vec<KvError>,
) -> Result<HashMap<String, CatalogMeta>, KvError> {
    let path = Inner::catalog_path(dir);
    let bytes = match std::fs::read(&path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
        Err(e) => return Err(io_err("read catalog", &path, &e)),
    };
    let mut map = HashMap::new();
    let mut offset = 0usize;
    let mut valid = 0u64;
    while let FrameRead::Frame { payload, next } = read_frame(&bytes, offset) {
        let Ok(()) = apply_catalog_record(payload, &mut map) else {
            break;
        };
        valid += 1;
        offset = next;
    }
    if offset < bytes.len() {
        let file = OpenOptions::new()
            .write(true)
            .open(&path)
            .map_err(|e| io_err("open catalog", &path, &e))?;
        file.set_len(offset as u64)
            .map_err(|e| io_err("truncate catalog", &path, &e))?;
        file.sync_data()
            .map_err(|e| io_err("fsync catalog", &path, &e))?;
        recovery.push(KvError::WalTailDiscarded {
            table: "<catalog>".to_owned(),
            part: 0,
            valid_records: valid,
            discarded_bytes: (bytes.len() - offset) as u64,
        });
    }
    Ok(map)
}

fn apply_catalog_record(
    payload: &[u8],
    map: &mut HashMap<String, CatalogMeta>,
) -> Result<(), ripple_wire::WireError> {
    let mut r = ByteReader::new(payload);
    match r.read_byte()? {
        CAT_CREATE => {
            let name = String::decode(&mut r)?;
            let parts = u32::decode(&mut r)?;
            let ubiquitous = r.read_byte()? != 0;
            let partitioning_id = u64::decode(&mut r)?;
            map.insert(
                name,
                CatalogMeta {
                    parts,
                    ubiquitous,
                    partitioning_id,
                },
            );
        }
        CAT_DROP => {
            let name = String::decode(&mut r)?;
            map.remove(&name);
        }
        tag => {
            return Err(ripple_wire::WireError::InvalidTag {
                target: "catalog record",
                tag,
            })
        }
    }
    Ok(())
}

/// A durable, partitioned [`KvStore`] backed by per-shard write-ahead logs
/// and snapshots.  See the crate docs for the on-disk layout and the
/// durability protocol.
#[derive(Debug, Clone)]
pub struct DiskStore {
    pub(crate) inner: Arc<Inner>,
    default_parts: u32,
}

impl DiskStore {
    /// Opens (creating if needed) a store at `dir` with default policies:
    /// one part per table, `EveryN(64)` group commit, 64 KiB snapshot
    /// threshold.
    ///
    /// # Errors
    ///
    /// As for [`DiskStoreBuilder::open`].
    pub fn open(dir: impl AsRef<Path>) -> Result<Self, KvError> {
        Self::builder().open(dir)
    }

    /// Starts building a store with explicit policies.
    #[must_use]
    pub fn builder() -> DiskStoreBuilder {
        DiskStoreBuilder::default()
    }

    /// What the most recent [`open`](DiskStore::open) had to discard:
    /// one [`KvError::WalTailDiscarded`] note per shard (or the catalog)
    /// whose log ended in a torn or corrupt record.  Empty after a clean
    /// shutdown.
    #[must_use]
    pub fn recovery_report(&self) -> Vec<KvError> {
        self.inner.recovery.lock().clone()
    }

    /// The directory this store is rooted at.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.inner.dir
    }

    fn insert_table(&self, name: &str, meta: CatalogMeta) -> Result<DiskTable, KvError> {
        let mut tables = self.inner.tables.write();
        if tables.contains_key(name) {
            return Err(KvError::TableExists {
                name: name.to_owned(),
            });
        }
        // Durable-first: the catalog record lands before the table exists
        // in memory, so a crash in between replays to an empty table.
        self.inner.catalog_create(name, meta)?;
        let table_dir = Inner::tables_dir(&self.inner.dir).join(escape_table_name(name));
        std::fs::create_dir_all(&table_dir).map_err(|e| io_err("create dir", &table_dir, &e))?;
        let shards = (0..meta.parts)
            .map(|part| {
                Mutex::new(Shard {
                    map: HashMap::new(),
                    wal: WalWriter::new(table_dir.clone(), part, 1, 0),
                })
            })
            .collect();
        let arc = Arc::new(TableInner {
            name: name.to_owned(),
            parts: meta.parts,
            ubiquitous: meta.ubiquitous,
            partitioning_id: meta.partitioning_id,
            dir: table_dir,
            shards,
            dropped: AtomicBool::new(false),
        });
        tables.insert(name.to_owned(), Arc::clone(&arc));
        Ok(DiskTable {
            store: Arc::clone(&self.inner),
            inner: arc,
        })
    }

    /// Every live table co-partitioned with `reference` (including itself),
    /// skipping ubiquitous tables, sorted by name.
    pub(crate) fn group_tables(&self, reference: &DiskTable) -> Vec<Arc<TableInner>> {
        let pid = reference.inner.partitioning_id;
        let mut group: Vec<_> = self
            .inner
            .tables
            .read()
            .values()
            .filter(|t| !t.ubiquitous && t.partitioning_id == pid)
            .cloned()
            .collect();
        group.sort_by(|a, b| a.name.cmp(&b.name));
        group
    }
}

/// Handle to a [`DiskStore`] table.
#[derive(Debug, Clone)]
pub struct DiskTable {
    pub(crate) store: Arc<Inner>,
    pub(crate) inner: Arc<TableInner>,
}

impl DiskTable {
    fn shard_for(&self, key: &RoutedKey) -> u32 {
        if self.inner.ubiquitous {
            0
        } else {
            key.part_for(self.inner.parts).0
        }
    }
}

impl Table for DiskTable {
    fn name(&self) -> &str {
        &self.inner.name
    }
    fn part_count(&self) -> u32 {
        self.inner.parts
    }
    fn is_ubiquitous(&self) -> bool {
        self.inner.ubiquitous
    }
    fn partitioning_id(&self) -> u64 {
        self.inner.partitioning_id
    }
    fn get(&self, key: &RoutedKey) -> Result<Option<Bytes>, KvError> {
        self.inner.check_live()?;
        let part = self.shard_for(key);
        self.store.count_op(part);
        Ok(self.inner.shards[part as usize]
            .lock()
            .map
            .get(key)
            .cloned())
    }
    fn put(&self, key: RoutedKey, value: Bytes) -> Result<Option<Bytes>, KvError> {
        self.inner.check_live()?;
        let part = self.shard_for(&key);
        self.store.count_op(part);
        let mut shard = self.inner.shards[part as usize].lock();
        shard.wal.append(&WalRecord::Put {
            key: key.clone(),
            value: value.clone(),
        });
        let prev = shard.map.insert(key, value);
        shard.wal.after_mutation(self.store.policy, &*self.store)?;
        Ok(prev)
    }
    fn delete(&self, key: &RoutedKey) -> Result<bool, KvError> {
        self.inner.check_live()?;
        let part = self.shard_for(key);
        self.store.count_op(part);
        let mut shard = self.inner.shards[part as usize].lock();
        let present = shard.map.remove(key).is_some();
        if present {
            shard.wal.append(&WalRecord::Delete { key: key.clone() });
            shard.wal.after_mutation(self.store.policy, &*self.store)?;
        }
        Ok(present)
    }
    fn len(&self) -> Result<usize, KvError> {
        self.inner.check_live()?;
        Ok(self.inner.shards.iter().map(|s| s.lock().map.len()).sum())
    }
    fn clear(&self) -> Result<(), KvError> {
        self.inner.check_live()?;
        for shard in &self.inner.shards {
            let mut shard = shard.lock();
            shard.map.clear();
            shard.wal.append(&WalRecord::Clear);
            shard.wal.after_mutation(self.store.policy, &*self.store)?;
        }
        Ok(())
    }
}

struct DiskPartView {
    store: Arc<Inner>,
    part: PartId,
    partitioning_id: u64,
    reference_name: String,
}

impl DiskPartView {
    fn resolve(&self, table: &str, write: bool) -> Result<Arc<TableInner>, KvError> {
        let t = self.store.table(table)?;
        t.check_live()?;
        if t.ubiquitous {
            if write {
                return Err(KvError::UbiquityMismatch {
                    name: table.to_owned(),
                });
            }
            return Ok(t);
        }
        if t.partitioning_id != self.partitioning_id {
            return Err(KvError::NotCopartitioned {
                left: table.to_owned(),
                right: self.reference_name.clone(),
            });
        }
        Ok(t)
    }

    /// The shard of `t` this view reads sequentially: its own part, or the
    /// single shard of a ubiquitous table.
    fn view_shard(&self, t: &TableInner) -> usize {
        if t.ubiquitous {
            0
        } else {
            self.part.index()
        }
    }

    fn key_shard(t: &TableInner, key: &RoutedKey) -> usize {
        if t.ubiquitous {
            0
        } else {
            key.part_for(t.parts).index()
        }
    }
}

impl PartView for DiskPartView {
    fn part(&self) -> PartId {
        self.part
    }
    fn get(&self, table: &str, key: &RoutedKey) -> Result<Option<Bytes>, KvError> {
        let t = self.resolve(table, false)?;
        self.store.count_op(self.part.0);
        let shard = Self::key_shard(&t, key);
        let out = t.shards[shard].lock().map.get(key).cloned();
        Ok(out)
    }
    fn put(&self, table: &str, key: RoutedKey, value: Bytes) -> Result<Option<Bytes>, KvError> {
        let t = self.resolve(table, true)?;
        self.store.count_op(self.part.0);
        let shard = Self::key_shard(&t, &key);
        let mut shard = t.shards[shard].lock();
        shard.wal.append(&WalRecord::Put {
            key: key.clone(),
            value: value.clone(),
        });
        let prev = shard.map.insert(key, value);
        shard.wal.after_mutation(self.store.policy, &*self.store)?;
        Ok(prev)
    }
    fn delete(&self, table: &str, key: &RoutedKey) -> Result<bool, KvError> {
        let t = self.resolve(table, true)?;
        self.store.count_op(self.part.0);
        let shard = Self::key_shard(&t, key);
        let mut shard = t.shards[shard].lock();
        let present = shard.map.remove(key).is_some();
        if present {
            shard.wal.append(&WalRecord::Delete { key: key.clone() });
            shard.wal.after_mutation(self.store.policy, &*self.store)?;
        }
        Ok(present)
    }
    fn scan(
        &self,
        table: &str,
        f: &mut dyn FnMut(&RoutedKey, &[u8]) -> ScanControl,
    ) -> Result<(), KvError> {
        let t = self.resolve(table, false)?;
        self.store.count_enumeration(self.part.0);
        let shard = t.shards[self.view_shard(&t)].lock();
        for (k, v) in &shard.map {
            if !f(k, v).should_continue() {
                break;
            }
        }
        Ok(())
    }
    fn drain(
        &self,
        table: &str,
        f: &mut dyn FnMut(RoutedKey, Bytes) -> ScanControl,
    ) -> Result<(), KvError> {
        let t = self.resolve(table, true)?;
        self.store.count_enumeration(self.part.0);
        let idx = self.view_shard(&t);
        // Snapshot the keys, then remove one at a time so the callback
        // runs outside the shard lock; unconsumed entries survive an
        // early stop.
        let keys: Vec<RoutedKey> = t.shards[idx].lock().map.keys().cloned().collect();
        for key in keys {
            let value = {
                let mut shard = t.shards[idx].lock();
                let Some(value) = shard.map.remove(&key) else {
                    continue;
                };
                shard.wal.append(&WalRecord::Delete { key: key.clone() });
                shard.wal.after_mutation(self.store.policy, &*self.store)?;
                value
            };
            if !f(key, value).should_continue() {
                break;
            }
        }
        Ok(())
    }
    fn len(&self, table: &str) -> Result<usize, KvError> {
        let t = self.resolve(table, false)?;
        let n = t.shards[self.view_shard(&t)].lock().map.len();
        Ok(n)
    }
}

impl KvStore for DiskStore {
    type Table = DiskTable;

    fn create_table(&self, spec: &TableSpec) -> Result<DiskTable, KvError> {
        let parts = if spec.is_ubiquitous() {
            1
        } else if spec.part_count() == 1 {
            self.default_parts
        } else {
            spec.part_count()
        };
        let id = self.inner.next_partitioning.fetch_add(1, Ordering::Relaxed);
        self.insert_table(
            spec.name(),
            CatalogMeta {
                parts,
                ubiquitous: spec.is_ubiquitous(),
                partitioning_id: id,
            },
        )
    }

    fn create_table_like(&self, name: &str, like: &DiskTable) -> Result<DiskTable, KvError> {
        like.inner.check_live()?;
        self.insert_table(
            name,
            CatalogMeta {
                parts: like.inner.parts,
                ubiquitous: like.inner.ubiquitous,
                partitioning_id: like.inner.partitioning_id,
            },
        )
    }

    fn lookup_table(&self, name: &str) -> Result<DiskTable, KvError> {
        Ok(DiskTable {
            store: Arc::clone(&self.inner),
            inner: self.inner.table(name)?,
        })
    }

    fn drop_table(&self, name: &str) -> Result<(), KvError> {
        let Some(t) = self.inner.tables.write().remove(name) else {
            return Err(KvError::NoSuchTable {
                name: name.to_owned(),
            });
        };
        t.dropped.store(true, Ordering::Release);
        // Durable-first again: once the drop record is synced, a crash
        // before the directory removal is cleaned up by the next open.
        self.inner.catalog_drop(name)?;
        std::fs::remove_dir_all(&t.dir).map_err(|e| io_err("remove dir", &t.dir, &e))?;
        Ok(())
    }

    fn table_names(&self) -> Vec<String> {
        self.inner.tables.read().keys().cloned().collect()
    }

    fn run_at<R, F>(&self, reference: &DiskTable, part: PartId, task: F) -> TaskHandle<R>
    where
        R: Send + 'static,
        F: FnOnce(&dyn PartView) -> R + Send + 'static,
    {
        assert!(
            part.0 < reference.part_count(),
            "part {part} out of range for {:?}",
            reference.name()
        );
        self.inner.cells.tasks.fetch_add(1, Ordering::Relaxed);
        self.inner
            .part_cell(part.0)
            .tasks
            .fetch_add(1, Ordering::Relaxed);
        let (tx, rx) = bounded(1);
        let view = DiskPartView {
            store: Arc::clone(&self.inner),
            part,
            partitioning_id: reference.inner.partitioning_id,
            reference_name: reference.inner.name.clone(),
        };
        std::thread::Builder::new()
            .name(format!("disk-store-{part}"))
            .spawn(move || {
                let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| task(&view)));
                let _ = tx.send(result);
            })
            .expect("spawn disk store task");
        TaskHandle::from_channel(part, rx)
    }

    fn metrics(&self) -> StoreMetrics {
        self.inner.cells.snapshot()
    }

    fn part_metrics(&self) -> Vec<StoreMetrics> {
        self.inner
            .part_cells
            .read()
            .iter()
            .map(|c| c.snapshot())
            .collect()
    }
}
