//! Shard checkpoints, durability protocol, and recovery for [`DiskStore`].
//!
//! The in-memory checkpoint/restore side mirrors `ripple-store-mem` so the
//! engine's existing recovery hooks work unchanged; the [`DurableStore`]
//! side adds what only a disk store can offer — barrier markers in the
//! logs, snapshot compaction, and rewind-to-barrier across a restart.

use std::collections::HashMap;

use bytes::Bytes;
use ripple_kv::{DurableStore, KvError, KvStore, PartId, RoutedKey, SyncPolicy};

use crate::store::{DiskStore, DiskTable, Shard};
use crate::wal::{self, WalRecord};

/// A checkpoint of one part (shard) of a partitioning group: the part's
/// entries in every co-placed table at the moment of capture.
#[derive(Debug, Clone)]
pub struct DiskPartCheckpoint {
    partitioning_id: u64,
    part: PartId,
    tables: Vec<(String, HashMap<RoutedKey, Bytes>)>,
}

impl DiskPartCheckpoint {
    /// The part this checkpoint captures.
    #[must_use]
    pub fn part(&self) -> PartId {
        self.part
    }

    /// Names of the tables captured.
    pub fn table_names(&self) -> impl Iterator<Item = &str> {
        self.tables.iter().map(|(n, _)| n.as_str())
    }

    /// Total number of entries captured across tables.
    #[must_use]
    pub fn entry_count(&self) -> usize {
        self.tables.iter().map(|(_, m)| m.len()).sum()
    }
}

impl DiskStore {
    /// Replaces the contents of `part` of the named group table with
    /// `data`, writing the replacement through the log (a `Clear` followed
    /// by `Put`s) so the restored state is durable like any other write.
    fn write_back(
        &self,
        name: &str,
        partitioning_id: u64,
        part: PartId,
        data: &HashMap<RoutedKey, Bytes>,
    ) -> Result<(), KvError> {
        let Ok(t) = self.lookup_table(name) else {
            // Tables dropped since the capture are skipped, as in the
            // memory store.
            return Ok(());
        };
        if t.inner.partitioning_id != partitioning_id {
            return Err(KvError::NotCopartitioned {
                left: name.to_owned(),
                right: format!("checkpoint of partitioning {partitioning_id}"),
            });
        }
        let mut shard = t.inner.shards[part.index()].lock();
        shard.map.clone_from(data);
        shard.wal.append(&WalRecord::Clear);
        for (key, value) in data {
            shard.wal.append(&WalRecord::Put {
                key: key.clone(),
                value: value.clone(),
            });
        }
        if self.inner.policy == SyncPolicy::Never {
            // Policy says mutations stay buffered; the next barrier commit
            // or flush lands them.
            Ok(())
        } else {
            shard.wal.write_out(true, &*self.inner)
        }
    }
}

impl ripple_kv::RecoverableStore for DiskStore {
    type Checkpoint = DiskPartCheckpoint;

    fn checkpoint_part(
        &self,
        reference: &DiskTable,
        part: PartId,
    ) -> Result<DiskPartCheckpoint, KvError> {
        reference.inner.check_live()?;
        let tables = self
            .group_tables(reference)
            .iter()
            .map(|t| (t.name.clone(), t.shards[part.index()].lock().map.clone()))
            .collect();
        Ok(DiskPartCheckpoint {
            partitioning_id: reference.inner.partitioning_id,
            part,
            tables,
        })
    }

    fn restore_part(&self, cp: &DiskPartCheckpoint) -> Result<(), KvError> {
        for (name, data) in &cp.tables {
            self.write_back(name, cp.partitioning_id, cp.part, data)?;
        }
        Ok(())
    }

    fn restore_part_tables(
        &self,
        cp: &DiskPartCheckpoint,
        tables: &[String],
    ) -> Result<(), KvError> {
        for name in tables {
            let Some((_, data)) = cp.tables.iter().find(|(n, _)| n == name) else {
                return Err(KvError::NoSuchTable { name: name.clone() });
            };
            self.write_back(name, cp.partitioning_id, cp.part, data)?;
        }
        Ok(())
    }
}

impl ripple_kv::HealableStore for DiskStore {
    fn recover_part(&self, reference: &DiskTable, part: PartId) -> Result<usize, KvError> {
        reference.inner.check_live()?;
        // The disk store keeps no replicas and injects no failures; a
        // "failed" part never arises, so there is nothing to promote.
        let _ = part;
        Ok(0)
    }

    fn part_is_failed(&self, reference: &DiskTable, _part: PartId) -> Result<bool, KvError> {
        reference.inner.check_live()?;
        Ok(false)
    }
}

impl DurableStore for DiskStore {
    fn sync_policy(&self) -> SyncPolicy {
        self.inner.policy
    }

    fn flush(&self) -> Result<(), KvError> {
        let tables: Vec<_> = self.inner.tables.read().values().cloned().collect();
        for t in tables {
            for shard in &t.shards {
                shard.lock().wal.write_out(true, &*self.inner)?;
            }
        }
        Ok(())
    }

    fn commit_barrier(&self, reference: &DiskTable, epoch: u64) -> Result<(), KvError> {
        reference.inner.check_live()?;
        // Under `Never` the marker (and everything buffered before it)
        // still reaches the file — surviving a process crash — but the
        // fsync is left to the journal flush that follows in the commit
        // protocol.
        let fsync = self.inner.policy != SyncPolicy::Never;
        for t in self.group_tables(reference) {
            for shard in &t.shards {
                let mut shard = shard.lock();
                shard.wal.append(&WalRecord::Barrier { epoch });
                shard.wal.write_out(fsync, &*self.inner)?;
            }
        }
        Ok(())
    }

    fn compact_group(&self, reference: &DiskTable, epoch: u64) -> Result<(), KvError> {
        reference.inner.check_live()?;
        for t in self.group_tables(reference) {
            for (part, shard) in t.shards.iter().enumerate() {
                let mut shard = shard.lock();
                let log_size = shard.wal.file_bytes + shard.wal.buffered() as u64;
                if log_size < self.inner.snapshot_threshold {
                    continue;
                }
                let part = u32::try_from(part).expect("part counts are u32");
                wal::write_snapshot(&t.dir, part, shard.wal.gen, epoch, &shard.map, &*self.inner)?;
                // The snapshot folds every generation up to the writer's;
                // list_shard_files now classifies them (and older
                // snapshots) as stale.
                let files = wal::list_shard_files(&t.dir, part)?;
                for path in &files.stale {
                    std::fs::remove_file(path)
                        .map_err(|e| wal::io_err("remove stale", path, &e))?;
                }
                shard.wal.reset_after_snapshot();
            }
        }
        Ok(())
    }

    fn rewind_group(&self, reference: &DiskTable, epoch: u64) -> Result<(), KvError> {
        reference.inner.check_live()?;
        for t in self.group_tables(reference) {
            for (part, shard) in t.shards.iter().enumerate() {
                let part_u32 = u32::try_from(part).expect("part counts are u32");
                let (map, writer) =
                    wal::rewind_shard(&t.dir, &t.name, part_u32, epoch, &*self.inner)?;
                *shard.lock() = Shard { map, wal: writer };
            }
        }
        Ok(())
    }
}
