//! Behavioural tests run against both queue-set implementations: delivery,
//! per-sender FIFO order, timeouts, put-from-anywhere (including from
//! workers), collocation of workers, and deletion.

use std::time::Duration;

use bytes::Bytes;
use ripple_kv::{KvStore, PartId, RoutedKey, Table, TableSpec};
use ripple_mq::{ChannelQueueSet, MqError, QueueSet, TableQueueSet};
use ripple_store_mem::MemStore;

const PARTS: u32 = 3;

fn setup() -> (MemStore, ripple_store_mem::MemTable) {
    let store = MemStore::builder().default_parts(PARTS).build();
    let table = store.create_table(&TableSpec::new("ref")).unwrap();
    (store, table)
}

fn msg(i: u32) -> Bytes {
    Bytes::from(format!("m{i}"))
}

fn for_each_impl(test: impl Fn(&dyn Fn() -> Box<dyn QueueSetDyn>)) {
    let (store, table) = setup();
    test(&|| Box::new(ChannelQueueSet::create(&store, &table, &fresh_name()).unwrap()));
    let (store, table) = setup();
    test(&|| Box::new(TableQueueSet::create(&store, &table, &fresh_name()).unwrap()));
}

fn fresh_name() -> String {
    use std::sync::atomic::{AtomicU32, Ordering};
    static N: AtomicU32 = AtomicU32::new(0);
    format!("q{}", N.fetch_add(1, Ordering::Relaxed))
}

/// Object-safe adapter so one test body can drive both implementations.
trait QueueSetDyn: Send + Sync {
    fn put(&self, part: PartId, msg: Bytes) -> Result<(), MqError>;
    fn drain_all(&self, idle: Duration) -> Result<Vec<Vec<Bytes>>, MqError>;
    fn delete(&self) -> Result<(), MqError>;
}

impl<Q: QueueSet> QueueSetDyn for Q {
    fn put(&self, part: PartId, msg: Bytes) -> Result<(), MqError> {
        QueueSet::put(self, part, msg)
    }
    /// Runs a worker per part that drains until `idle` elapses with nothing.
    fn drain_all(&self, idle: Duration) -> Result<Vec<Vec<Bytes>>, MqError> {
        self.run_workers(move |_view, rx| {
            let mut got = Vec::new();
            while let Some(m) = rx.recv_timeout(idle).unwrap() {
                got.push(m);
            }
            got
        })
    }
    fn delete(&self) -> Result<(), MqError> {
        QueueSet::delete(self)
    }
}

#[test]
fn delivers_to_the_right_queue() {
    for_each_impl(|mk| {
        let q = mk();
        q.put(PartId(0), msg(0)).unwrap();
        q.put(PartId(2), msg(2)).unwrap();
        let got = q.drain_all(Duration::from_millis(50)).unwrap();
        assert_eq!(got[0], vec![msg(0)]);
        assert!(got[1].is_empty());
        assert_eq!(got[2], vec![msg(2)]);
    });
}

#[test]
fn preserves_sender_fifo_order() {
    for_each_impl(|mk| {
        let q = mk();
        for i in 0..100 {
            q.put(PartId(1), msg(i)).unwrap();
        }
        let got = q.drain_all(Duration::from_millis(50)).unwrap();
        let expect: Vec<Bytes> = (0..100).map(msg).collect();
        assert_eq!(got[1], expect);
    });
}

#[test]
fn times_out_on_empty_queue() {
    for_each_impl(|mk| {
        let q = mk();
        let got = q.drain_all(Duration::from_millis(20)).unwrap();
        assert!(got.iter().all(Vec::is_empty));
    });
}

#[test]
fn rejects_out_of_range_part() {
    for_each_impl(|mk| {
        let q = mk();
        assert!(matches!(
            q.put(PartId(PARTS), msg(0)),
            Err(MqError::PartOutOfRange { .. })
        ));
    });
}

#[test]
fn delete_is_idempotent_error() {
    for_each_impl(|mk| {
        let q = mk();
        q.delete().unwrap();
        assert!(matches!(
            q.put(PartId(0), msg(0)),
            Err(MqError::QueueSetDeleted { .. })
        ));
        assert!(matches!(q.delete(), Err(MqError::QueueSetDeleted { .. })));
    });
}

#[test]
fn workers_can_put_to_other_queues() {
    // Part 0 forwards each message to part 1; per-sender order holds.
    let (store, table) = setup();
    let q = ChannelQueueSet::create(&store, &table, "fwd").unwrap();
    for i in 0..10 {
        QueueSet::put(&q, PartId(0), msg(i)).unwrap();
    }
    let q2 = q.clone();
    let got = q
        .run_workers(move |_view, rx| {
            let mut got = Vec::new();
            while let Some(m) = rx.recv_timeout(Duration::from_millis(40)).unwrap() {
                if rx.part() == PartId(0) {
                    QueueSet::put(&q2, PartId(1), m).unwrap();
                } else {
                    got.push(m);
                }
            }
            got
        })
        .unwrap();
    let expect: Vec<Bytes> = (0..10).map(msg).collect();
    assert_eq!(got[1], expect);
}

#[test]
fn workers_are_collocated_with_reference_parts() {
    let (store, table) = setup();
    // Seed one entry per part of the reference table.
    for p in 0..PARTS {
        table
            .put(
                RoutedKey::with_route(u64::from(p), Bytes::from(format!("k{p}"))),
                Bytes::from_static(b"v"),
            )
            .unwrap();
    }
    let q = TableQueueSet::create(&store, &table, "colo").unwrap();
    let counts = q.run_workers(|view, _rx| view.len("ref").unwrap()).unwrap();
    assert_eq!(counts, vec![1, 1, 1]);
}

#[test]
fn table_queue_backing_table_is_copartitioned_and_dropped_on_delete() {
    let (store, table) = setup();
    let q = TableQueueSet::create(&store, &table, "life").unwrap();
    let backing = store.lookup_table(q.table_name()).unwrap();
    assert_eq!(backing.partitioning_id(), table.partitioning_id());
    QueueSet::delete(&q).unwrap();
    assert!(store.lookup_table(q.table_name()).is_err());
}

#[test]
fn worker_panic_is_reported_per_part() {
    let (store, table) = setup();
    let q = ChannelQueueSet::create(&store, &table, "boom").unwrap();
    let err = q
        .run_workers(|_view, rx| {
            if rx.part() == PartId(1) {
                panic!("worker bug");
            }
            0u32
        })
        .unwrap_err();
    assert_eq!(err, MqError::WorkerPanicked { part: 1 });
}

#[test]
fn cross_thread_puts_all_arrive() {
    for_each_impl(|mk| {
        let q = mk();
        let q = std::sync::Arc::new(q);
        std::thread::scope(|s| {
            for t in 0..4u32 {
                let q = std::sync::Arc::clone(&q);
                s.spawn(move || {
                    for i in 0..50 {
                        q.put(PartId((t + i) % PARTS), msg(t * 1000 + i)).unwrap();
                    }
                });
            }
        });
        let got = q.drain_all(Duration::from_millis(60)).unwrap();
        let total: usize = got.iter().map(Vec::len).sum();
        assert_eq!(total, 200);
    });
}
