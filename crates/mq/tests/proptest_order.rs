//! Property test: both queue-set implementations deliver every message,
//! and deliver messages from any one logical sender in FIFO order, for
//! arbitrary interleavings of puts across queues.

use std::time::Duration;

use bytes::Bytes;
use proptest::prelude::*;
use ripple_kv::{KvStore, PartId, TableSpec};
use ripple_mq::{ChannelQueueSet, QueueSet, TableQueueSet};
use ripple_store_mem::MemStore;
use ripple_wire::{from_wire, to_wire};

const PARTS: u32 = 3;

/// A message: (sender, sequence-within-sender).
fn encode(sender: u32, seq: u32) -> Bytes {
    to_wire(&(sender, seq))
}

fn drain_all<Q: QueueSet>(qs: &Q) -> Vec<Vec<(u32, u32)>> {
    qs.run_workers(|_view, rx| {
        let mut got = Vec::new();
        while let Some(m) = rx.recv_timeout(Duration::from_millis(40)).unwrap() {
            got.push(from_wire::<(u32, u32)>(&m).unwrap());
        }
        got
    })
    .unwrap()
}

fn check(puts: &[(u32, u32)], received: Vec<Vec<(u32, u32)>>) -> Result<(), TestCaseError> {
    let total: usize = received.iter().map(Vec::len).sum();
    prop_assert_eq!(total, puts.len(), "every message must arrive");
    // Per (sender, queue): sequence numbers strictly increase.
    for (part, msgs) in received.iter().enumerate() {
        let mut last: std::collections::HashMap<u32, u32> = Default::default();
        for (sender, seq) in msgs {
            if let Some(prev) = last.insert(*sender, *seq) {
                prop_assert!(
                    prev < *seq,
                    "queue {part}: sender {sender} out of order ({prev} then {seq})"
                );
            }
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// puts: a sequence of (sender, destination-queue) pairs; each sender's
    /// messages carry increasing sequence numbers.
    #[test]
    fn channel_queues_preserve_sender_fifo(
        plan in prop::collection::vec((0u32..4, 0u32..PARTS), 1..80),
    ) {
        let store = MemStore::builder().default_parts(PARTS).build();
        let table = store.create_table(&TableSpec::new("ref")).unwrap();
        let qs = ChannelQueueSet::create(&store, &table, "pq").unwrap();
        let mut counters = [0u32; 4];
        let mut puts = Vec::new();
        for (sender, dst) in plan {
            let seq = counters[sender as usize];
            counters[sender as usize] += 1;
            qs.put(PartId(dst), encode(sender, seq)).unwrap();
            puts.push((sender, seq));
        }
        check(&puts, drain_all(&qs))?;
    }

    #[test]
    fn table_queues_preserve_sender_fifo(
        plan in prop::collection::vec((0u32..4, 0u32..PARTS), 1..60),
    ) {
        let store = MemStore::builder().default_parts(PARTS).build();
        let table = store.create_table(&TableSpec::new("ref")).unwrap();
        let qs = TableQueueSet::create(&store, &table, "pq").unwrap();
        let mut counters = [0u32; 4];
        let mut puts = Vec::new();
        for (sender, dst) in plan {
            let seq = counters[sender as usize];
            counters[sender as usize] += 1;
            qs.put(PartId(dst), encode(sender, seq)).unwrap();
            puts.push((sender, seq));
        }
        check(&puts, drain_all(&qs))?;
    }
}
