//! Message queuing for the Ripple analytics platform (paper §III-B).
//!
//! Having delegated the placement of computation to the storage layer,
//! Ripple also asks the lower layer for a simple communication facility.
//! The abstraction is the **queue set**: placed like a given key/value
//! table, with one queue per part.  Mobile client code runs in each part
//! and reads (with a timeout) from the local queue; messages can be put
//! into any queue of the set from anywhere in the system.
//!
//! Two implementations are provided:
//!
//! - [`TableQueueSet`] — the paper's generic implementation: "each new
//!   queue set is implemented by such a new table".  It works over *any*
//!   [`KvStore`](ripple_kv::KvStore), creating a table co-partitioned with the reference table
//!   and moving messages through it with sequence-numbered keys, so
//!   per-(sender, receiver) FIFO order is preserved.
//! - [`ChannelQueueSet`] — a fast in-process path using FIFO channels,
//!   standing in for a store with a native queuing extension.
//!
//! Both preserve the ordering contract the `incremental` job property
//! relies on: messages from a given sender to a given receiver are
//! delivered in the order sent.
//!
//! # Examples
//!
//! ```
//! use ripple_kv::{KvStore, PartId, TableSpec};
//! use ripple_mq::{ChannelQueueSet, QueueSet};
//! use ripple_store_mem::MemStore;
//! use std::time::Duration;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let store = MemStore::builder().default_parts(2).build();
//! let table = store.create_table(&TableSpec::new("data"))?;
//! let qs = ChannelQueueSet::create(&store, &table, "work")?;
//! qs.put(PartId(1), b"hello".to_vec().into())?;
//! let got = qs.run_workers(move |_view, rx| {
//!     rx.recv_timeout(Duration::from_millis(100)).unwrap()
//! })?;
//! assert!(got[0].is_none());
//! assert_eq!(got[1].as_deref(), Some(&b"hello"[..]));
//! # Ok(())
//! # }
//! ```

mod channel;
mod error;
mod table_queue;

pub use channel::ChannelQueueSet;
pub use error::MqError;
pub use table_queue::TableQueueSet;

use std::time::Duration;

use bytes::Bytes;
use ripple_kv::{PartId, PartView};

/// Read access to the local queue of a queue set, handed to the mobile
/// worker code running in each part.
pub trait QueueReceiver {
    /// The part whose queue this receives from.
    fn part(&self) -> PartId;

    /// Reads the next message, waiting up to `timeout`.
    ///
    /// Returns `Ok(None)` on timeout.
    ///
    /// # Errors
    ///
    /// Fails with [`MqError`] if the queue set was deleted or its store
    /// closed.
    fn recv_timeout(&mut self, timeout: Duration) -> Result<Option<Bytes>, MqError>;
}

/// A set of queues placed like a key/value table: one queue per part.
pub trait QueueSet: Clone + Send + Sync + 'static {
    /// The queue set's name.
    fn name(&self) -> &str;

    /// Number of queues (= parts of the reference table).
    fn parts(&self) -> u32;

    /// Puts `msg` into the queue of `part`, from anywhere in the system.
    ///
    /// Messages from one sender thread to one queue are delivered in the
    /// order they were put.
    ///
    /// # Errors
    ///
    /// Fails with [`MqError`] if the queue set was deleted.
    fn put(&self, part: PartId, msg: Bytes) -> Result<(), MqError>;

    /// Runs `worker` in every part concurrently, each collocated with the
    /// part's data (through the [`PartView`]) and holding the part's
    /// [`QueueReceiver`]; returns the workers' results in part order.
    ///
    /// # Errors
    ///
    /// Fails if a worker panicked or the store closed.
    fn run_workers<R, F>(&self, worker: F) -> Result<Vec<R>, MqError>
    where
        R: Send + 'static,
        F: Fn(&dyn PartView, &mut dyn QueueReceiver) -> R + Clone + Send + 'static;

    /// Deletes the queue set and any backing resources.
    ///
    /// # Errors
    ///
    /// Fails with [`MqError`] if already deleted.
    fn delete(&self) -> Result<(), MqError>;
}
