use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use bytes::Bytes;
use ripple_kv::{KvError, KvStore, PartId, PartView, RoutedKey, ScanControl, Table, TaskHandle};
use ripple_wire::to_wire;

use crate::{MqError, QueueReceiver, QueueSet};

/// How long a polling receiver sleeps between looks at an empty queue.
const POLL_INTERVAL: Duration = Duration::from_micros(300);

/// The paper's generic queue-set implementation: "each new queue set is
/// implemented by such a new table" (§IV-B).
///
/// The backing table is created co-partitioned with the reference table, so
/// each queue's entries are collocated with the part they serve.  A put
/// writes the message under a key routed to the destination part with a
/// globally unique, monotonically increasing sequence number as its body;
/// workers drain their local slice and deliver in sequence order, which
/// preserves per-(sender, receiver) FIFO.
pub struct TableQueueSet<S: KvStore> {
    inner: Arc<Inner<S>>,
}

impl<S: KvStore> Clone for TableQueueSet<S> {
    fn clone(&self) -> Self {
        Self {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<S: KvStore> std::fmt::Debug for TableQueueSet<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TableQueueSet")
            .field("name", &self.inner.name)
            .field("table", &self.inner.table_name)
            .finish()
    }
}

struct Inner<S: KvStore> {
    name: String,
    table_name: String,
    store: S,
    reference: S::Table,
    table: S::Table,
    seq: AtomicU64,
    deleted: AtomicBool,
}

impl<S: KvStore> TableQueueSet<S> {
    /// Creates a queue set placed like `reference`, backed by a fresh table
    /// named `__mq_<name>`.
    ///
    /// # Errors
    ///
    /// Fails if the backing table name is taken or `reference` was dropped.
    pub fn create(store: &S, reference: &S::Table, name: &str) -> Result<Self, MqError> {
        let table_name = format!("__mq_{name}");
        let table = store.create_table_like(&table_name, reference)?;
        Ok(Self {
            inner: Arc::new(Inner {
                name: name.to_owned(),
                table_name,
                store: store.clone(),
                reference: reference.clone(),
                table,
                seq: AtomicU64::new(0),
                deleted: AtomicBool::new(false),
            }),
        })
    }

    /// The name of the backing table (exposed for inspection and tests).
    pub fn table_name(&self) -> &str {
        &self.inner.table_name
    }

    fn check_live(&self) -> Result<(), MqError> {
        if self.inner.deleted.load(Ordering::Acquire) {
            return Err(MqError::QueueSetDeleted {
                name: self.inner.name.clone(),
            });
        }
        Ok(())
    }
}

struct TableReceiver<'a> {
    part: PartId,
    table: &'a str,
    view: &'a dyn PartView,
    buffer: VecDeque<Bytes>,
}

impl TableReceiver<'_> {
    /// Drains whatever is locally queued into the buffer, in sequence order.
    fn refill(&mut self) -> Result<(), MqError> {
        let mut batch: Vec<(u64, Bytes)> = Vec::new();
        self.view.drain(self.table, &mut |key, value| {
            let seq = ripple_wire::from_wire::<u64>(key.body()).unwrap_or(u64::MAX);
            batch.push((seq, value));
            ScanControl::Continue
        })?;
        batch.sort_by_key(|(seq, _)| *seq);
        self.buffer.extend(batch.into_iter().map(|(_, v)| v));
        Ok(())
    }
}

impl QueueReceiver for TableReceiver<'_> {
    fn part(&self) -> PartId {
        self.part
    }

    fn recv_timeout(&mut self, timeout: Duration) -> Result<Option<Bytes>, MqError> {
        if let Some(msg) = self.buffer.pop_front() {
            return Ok(Some(msg));
        }
        let deadline = Instant::now() + timeout;
        loop {
            self.refill()?;
            if let Some(msg) = self.buffer.pop_front() {
                return Ok(Some(msg));
            }
            if Instant::now() >= deadline {
                return Ok(None);
            }
            std::thread::sleep(POLL_INTERVAL);
        }
    }
}

impl<S: KvStore> QueueSet for TableQueueSet<S> {
    fn name(&self) -> &str {
        &self.inner.name
    }

    fn parts(&self) -> u32 {
        self.inner.reference.part_count()
    }

    fn put(&self, part: PartId, msg: Bytes) -> Result<(), MqError> {
        self.check_live()?;
        if part.0 >= self.parts() {
            return Err(MqError::PartOutOfRange {
                part: part.0,
                parts: self.parts(),
            });
        }
        let seq = self.inner.seq.fetch_add(1, Ordering::Relaxed);
        let key = RoutedKey::with_route(u64::from(part.0), to_wire(&seq).to_vec().into());
        self.inner.table.put(key, msg)?;
        Ok(())
    }

    fn run_workers<R, F>(&self, worker: F) -> Result<Vec<R>, MqError>
    where
        R: Send + 'static,
        F: Fn(&dyn PartView, &mut dyn QueueReceiver) -> R + Clone + Send + 'static,
    {
        self.check_live()?;
        let handles: Vec<TaskHandle<R>> = (0..self.parts())
            .map(|p| {
                let worker = worker.clone();
                let table_name = self.inner.table_name.clone();
                self.inner
                    .store
                    .run_at(&self.inner.reference, PartId(p), move |view| {
                        let mut receiver = TableReceiver {
                            part: PartId(p),
                            table: &table_name,
                            view,
                            buffer: VecDeque::new(),
                        };
                        worker(view, &mut receiver)
                    })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| {
                let part = h.part().0;
                h.join().map_err(|e| match e {
                    KvError::TaskPanicked { .. } => MqError::WorkerPanicked { part },
                    other => MqError::Store(other),
                })
            })
            .collect()
    }

    fn delete(&self) -> Result<(), MqError> {
        if self.inner.deleted.swap(true, Ordering::AcqRel) {
            return Err(MqError::QueueSetDeleted {
                name: self.inner.name.clone(),
            });
        }
        self.inner.store.drop_table(&self.inner.table_name)?;
        Ok(())
    }
}
