use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use ripple_kv::{KvError, KvStore, PartId, PartView, Table, TaskHandle};

use crate::{MqError, QueueReceiver, QueueSet};

/// A queue set backed by in-process FIFO channels — the fast path,
/// standing in for a store with a native queuing extension.
///
/// FIFO channels deliver all messages in put order, which is stronger than
/// (and therefore satisfies) the per-(sender, receiver) ordering contract.
///
/// See the [crate docs](crate) for an example.
pub struct ChannelQueueSet<S: KvStore> {
    inner: Arc<Inner<S>>,
}

impl<S: KvStore> Clone for ChannelQueueSet<S> {
    fn clone(&self) -> Self {
        Self {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<S: KvStore> std::fmt::Debug for ChannelQueueSet<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChannelQueueSet")
            .field("name", &self.inner.name)
            .field("parts", &self.inner.queues.len())
            .finish()
    }
}

struct Inner<S: KvStore> {
    name: String,
    store: S,
    reference: S::Table,
    queues: Vec<(Sender<Bytes>, Receiver<Bytes>)>,
    deleted: AtomicBool,
}

impl<S: KvStore> ChannelQueueSet<S> {
    /// Creates a queue set placed like `reference`: one queue per part.
    ///
    /// # Errors
    ///
    /// Fails if `reference` has been dropped.
    pub fn create(store: &S, reference: &S::Table, name: &str) -> Result<Self, MqError> {
        // Touching the table verifies it is live.
        reference.len().map_err(MqError::Store)?;
        let queues = (0..reference.part_count()).map(|_| unbounded()).collect();
        Ok(Self {
            inner: Arc::new(Inner {
                name: name.to_owned(),
                store: store.clone(),
                reference: reference.clone(),
                queues,
                deleted: AtomicBool::new(false),
            }),
        })
    }

    fn check_live(&self) -> Result<(), MqError> {
        if self.inner.deleted.load(Ordering::Acquire) {
            return Err(MqError::QueueSetDeleted {
                name: self.inner.name.clone(),
            });
        }
        Ok(())
    }
}

struct ChannelReceiver {
    part: PartId,
    rx: Receiver<Bytes>,
}

impl QueueReceiver for ChannelReceiver {
    fn part(&self) -> PartId {
        self.part
    }

    fn recv_timeout(&mut self, timeout: Duration) -> Result<Option<Bytes>, MqError> {
        match self.rx.recv_timeout(timeout) {
            Ok(msg) => Ok(Some(msg)),
            Err(RecvTimeoutError::Timeout) => Ok(None),
            Err(RecvTimeoutError::Disconnected) => Err(MqError::Store(KvError::StoreClosed)),
        }
    }
}

impl<S: KvStore> QueueSet for ChannelQueueSet<S> {
    fn name(&self) -> &str {
        &self.inner.name
    }

    fn parts(&self) -> u32 {
        self.inner.queues.len() as u32
    }

    fn put(&self, part: PartId, msg: Bytes) -> Result<(), MqError> {
        self.check_live()?;
        let q = self
            .inner
            .queues
            .get(part.index())
            .ok_or(MqError::PartOutOfRange {
                part: part.0,
                parts: self.parts(),
            })?;
        q.0.send(msg)
            .map_err(|_| MqError::Store(KvError::StoreClosed))
    }

    fn run_workers<R, F>(&self, worker: F) -> Result<Vec<R>, MqError>
    where
        R: Send + 'static,
        F: Fn(&dyn PartView, &mut dyn QueueReceiver) -> R + Clone + Send + 'static,
    {
        self.check_live()?;
        let handles: Vec<TaskHandle<R>> = (0..self.parts())
            .map(|p| {
                let worker = worker.clone();
                let rx = self.inner.queues[p as usize].1.clone();
                self.inner
                    .store
                    .run_at(&self.inner.reference, PartId(p), move |view| {
                        let mut receiver = ChannelReceiver {
                            part: PartId(p),
                            rx,
                        };
                        worker(view, &mut receiver)
                    })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| {
                let part = h.part().0;
                h.join().map_err(|e| match e {
                    KvError::TaskPanicked { .. } => MqError::WorkerPanicked { part },
                    other => MqError::Store(other),
                })
            })
            .collect()
    }

    fn delete(&self) -> Result<(), MqError> {
        if self.inner.deleted.swap(true, Ordering::AcqRel) {
            return Err(MqError::QueueSetDeleted {
                name: self.inner.name.clone(),
            });
        }
        Ok(())
    }
}
