use std::error::Error;
use std::fmt;

use ripple_kv::KvError;

/// Error produced by message-queuing operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum MqError {
    /// The queue set has been deleted.
    QueueSetDeleted {
        /// The queue set's name.
        name: String,
    },
    /// A queue index was at or past the set's queue count.
    PartOutOfRange {
        /// The requested part.
        part: u32,
        /// The set's queue count.
        parts: u32,
    },
    /// A worker dispatched by `run_workers` panicked.
    WorkerPanicked {
        /// The part the worker ran at.
        part: u32,
    },
    /// The underlying key/value store failed.
    Store(KvError),
}

impl fmt::Display for MqError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MqError::QueueSetDeleted { name } => {
                write!(f, "queue set {name:?} has been deleted")
            }
            MqError::PartOutOfRange { part, parts } => {
                write!(f, "queue {part} out of range for set with {parts} queues")
            }
            MqError::WorkerPanicked { part } => {
                write!(f, "queue worker panicked at part {part}")
            }
            MqError::Store(e) => write!(f, "store error: {e}"),
        }
    }
}

impl Error for MqError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            MqError::Store(e) => Some(e),
            _ => None,
        }
    }
}

impl From<KvError> for MqError {
    fn from(e: KvError) -> Self {
        MqError::Store(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wraps_store_errors_with_source() {
        let e = MqError::from(KvError::StoreClosed);
        assert!(e.source().is_some());
        assert!(e.to_string().contains("store"));
    }

    #[test]
    fn is_send_sync() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<MqError>();
    }
}
