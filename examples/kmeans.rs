//! K-means clustering as an iterative K/V EBSP analytic, exercising
//! **broadcast data** (the current centroids live in a ubiquitous table)
//! and **aggregators** (per-centroid sums flow up through the barrier).
//!
//! Each outer round: every point reads the centroids from broadcast data,
//! assigns itself, and feeds per-cluster sums into aggregators; the driver
//! recomputes centroids from the aggregates and rebroadcasts until stable.
//!
//! Run: `cargo run --example kmeans`

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use ripple::ebsp::SumF64;
use ripple::prelude::*;
use ripple_wire::to_wire;

const K: usize = 3;

struct AssignPoints;

impl Job for AssignPoints {
    type Key = u32;
    type State = (f64, f64, u32); // (x, y, assigned cluster)
    type Message = ();
    type OutKey = ();
    type OutValue = ();

    fn state_tables(&self) -> Vec<String> {
        vec!["points".to_owned()]
    }

    fn broadcast_table(&self) -> Option<String> {
        Some("centroids".to_owned())
    }

    fn aggregators(&self) -> Vec<(String, Arc<dyn Aggregate>)> {
        let mut aggs: Vec<(String, Arc<dyn Aggregate>)> = Vec::new();
        for c in 0..K {
            aggs.push((format!("sx{c}"), Arc::new(SumF64)));
            aggs.push((format!("sy{c}"), Arc::new(SumF64)));
            aggs.push((format!("n{c}"), Arc::new(SumF64)));
        }
        aggs
    }

    fn compute(&self, ctx: &mut ComputeContext<'_, Self>) -> Result<bool, EbspError> {
        let (x, y, _) = ctx.read_state(0)?.expect("points are preloaded");
        let mut best = (0usize, f64::INFINITY);
        for c in 0..K {
            let (cx, cy): (f64, f64) = ctx
                .broadcast(&(c as u32))?
                .expect("centroids are broadcast");
            let d = (x - cx).powi(2) + (y - cy).powi(2);
            if d < best.1 {
                best = (c, d);
            }
        }
        let c = best.0;
        ctx.write_state(0, &(x, y, c as u32))?;
        ctx.aggregate(&format!("sx{c}"), AggValue::F64(x))?;
        ctx.aggregate(&format!("sy{c}"), AggValue::F64(y))?;
        ctx.aggregate(&format!("n{c}"), AggValue::F64(1.0))?;
        Ok(false) // one step per outer round
    }
}

fn main() -> Result<(), EbspError> {
    let store = MemStore::builder().default_parts(4).build();

    // Three blobs of points.
    let mut rng = StdRng::seed_from_u64(12);
    let blobs = [(0.0, 0.0), (8.0, 8.0), (0.0, 9.0)];
    let points: Vec<(u32, (f64, f64, u32))> = (0..300u32)
        .map(|i| {
            let (bx, by) = blobs[i as usize % 3];
            let x = bx + rng.gen_range(-1.5..1.5);
            let y = by + rng.gen_range(-1.5..1.5);
            (i, (x, y, 0))
        })
        .collect();

    // The ubiquitous broadcast table holding the centroids.
    let centroids_table = store
        .create_table(TableSpec::new("centroids").ubiquitous())
        .map_err(EbspError::Kv)?;
    // Forgy initialization: seed the centroids with the first K points.
    let mut centroids: Vec<(f64, f64)> = points
        .iter()
        .take(K)
        .map(|(_, (x, y, _))| (*x, *y))
        .collect();

    // Load the points into the state table once, up front.
    let points_table = store
        .create_table(&TableSpec::new("points"))
        .map_err(EbspError::Kv)?;
    for (id, p) in &points {
        points_table
            .put(ripple::ebsp::key_to_routed(id), to_wire(p))
            .map_err(EbspError::Kv)?;
    }

    for round in 1..=20 {
        for (c, (x, y)) in centroids.iter().enumerate() {
            centroids_table
                .put(ripple::ebsp::key_to_routed(&(c as u32)), to_wire(&(*x, *y)))
                .map_err(EbspError::Kv)?;
        }
        let job = Arc::new(AssignPoints);
        let ids: Vec<u32> = points.iter().map(|(id, _)| *id).collect();
        let outcome = JobRunner::new(store.clone()).launch(
            job,
            RunOptions::new().loaders(vec![Box::new(FnLoader::new(
                move |sink: &mut dyn LoadSink<AssignPoints>| {
                    for id in ids {
                        sink.enable(id)?;
                    }
                    Ok(())
                },
            ))]),
        )?;

        let mut moved = 0.0f64;
        for (c, slot) in centroids.iter_mut().enumerate() {
            let n = outcome
                .aggregates
                .get(&format!("n{c}"))
                .map_or(0.0, |v| v.as_f64());
            if n > 0.0 {
                let nx = outcome
                    .aggregates
                    .get(&format!("sx{c}"))
                    .expect("fed")
                    .as_f64()
                    / n;
                let ny = outcome
                    .aggregates
                    .get(&format!("sy{c}"))
                    .expect("fed")
                    .as_f64()
                    / n;
                moved += (slot.0 - nx).abs() + (slot.1 - ny).abs();
                *slot = (nx, ny);
            }
        }
        println!(
            "round {round:>2}: centroids {:?} (moved {moved:.4})",
            centroids
                .iter()
                .map(|(x, y)| format!("({x:.2},{y:.2})"))
                .collect::<Vec<_>>()
        );
        if moved < 1e-6 {
            println!("converged after {round} rounds");
            break;
        }
    }

    // The centroids should sit near the blob centers.
    for (bx, by) in blobs {
        let close = centroids
            .iter()
            .any(|(cx, cy)| (cx - bx).abs() < 1.0 && (cy - by).abs() < 1.0);
        assert!(close, "a centroid should have found blob ({bx},{by})");
    }
    Ok(())
}
