//! Fault tolerance (paper §IV-A): a shard dies mid-job and the run still
//! produces exact results, two ways —
//!
//! 1. **checkpoint + rollback-replay**: the engine checkpoints every part
//!    at barriers; when a part fails, everything rolls back to the last
//!    consistent cut and replays (exact, because the job is deterministic);
//! 2. **replica promotion**: tables created `replicated()` keep a backup
//!    copy of each part that survives the primary's loss.
//!
//! Run: `cargo run --example fault_tolerance`

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use ripple::kv::{PartId, RoutedKey, Table, TableSpec};
use ripple::prelude::*;
use ripple_wire::{from_wire, to_wire};

/// Sums step numbers for ten steps; injects a shard failure at step 5.
struct Summer {
    store: MemStore,
    injected: AtomicBool,
}

impl Job for Summer {
    type Key = u32;
    type State = u64;
    type Message = ();
    type OutKey = ();
    type OutValue = ();

    fn state_tables(&self) -> Vec<String> {
        vec!["sums".to_owned()]
    }

    fn properties(&self) -> JobProperties {
        JobProperties {
            deterministic: true,
            ..JobProperties::default()
        }
    }

    fn compute(&self, ctx: &mut ComputeContext<'_, Self>) -> Result<bool, EbspError> {
        if ctx.step() == 5 && *ctx.key() == 0 && !self.injected.swap(true, Ordering::SeqCst) {
            println!("  !! injecting shard failure at step 5");
            let t = self.store.lookup_table("sums").expect("table exists");
            self.store.fail_part(&t, PartId(1)).expect("inject failure");
        }
        let s = ctx.read_state(0)?.unwrap_or(0) + u64::from(ctx.step());
        ctx.write_state(0, &s)?;
        Ok(ctx.step() < 10)
    }
}

fn main() -> Result<(), EbspError> {
    // --- 1. Checkpoint + rollback-replay ---------------------------------
    let store = MemStore::builder().default_parts(3).build();
    let job = Arc::new(Summer {
        store: store.clone(),
        injected: AtomicBool::new(false),
    });
    let outcome = JobRunner::new(store.clone())
        .checkpoint_interval(2)
        .launch(
            job,
            RunOptions::new()
                .loaders(vec![Box::new(FnLoader::new(
                    |sink: &mut dyn LoadSink<Summer>| {
                        for k in 0..30u32 {
                            sink.enable(k)?;
                        }
                        Ok(())
                    },
                ))])
                .recovery(),
        )?;
    println!(
        "checkpoint recovery: {} steps, {} recoveries, results exact:",
        outcome.steps, outcome.metrics.recoveries
    );
    assert!(outcome.metrics.recoveries >= 1);
    let table = store.lookup_table("sums").map_err(EbspError::Kv)?;
    let exporter = Arc::new(CollectingExporter::<u32, u64>::new());
    export_state_table(&store, &table, Arc::clone(&exporter))?;
    let expect: u64 = (1..=10u64).sum();
    for (k, v) in exporter.take() {
        assert_eq!(v, expect, "component {k}");
    }
    println!("  all 30 components summed 1..=10 = {expect} despite the failure");

    // --- 2. Replica promotion --------------------------------------------
    let store = MemStore::builder().default_parts(2).build();
    let t = store
        .create_table(TableSpec::new("kv").parts(2).replicated())
        .map_err(EbspError::Kv)?;
    for i in 0..100u64 {
        t.put(
            RoutedKey::with_route(i, to_wire(&i).to_vec().into()),
            to_wire(&(i * i)),
        )
        .map_err(EbspError::Kv)?;
    }
    store.fail_part(&t, PartId(0)).map_err(EbspError::Kv)?;
    println!("\nreplica promotion: part 0 failed; promoting its backup...");
    let promoted = store
        .promote_replicas(&t, PartId(0))
        .map_err(EbspError::Kv)?;
    assert_eq!(promoted, 1);
    for i in 0..100u64 {
        let raw = t
            .get(&RoutedKey::with_route(i, to_wire(&i).to_vec().into()))
            .map_err(EbspError::Kv)?
            .expect("survived via the replica");
        assert_eq!(from_wire::<u64>(&raw)?, i * i);
    }
    println!("  all 100 entries intact after promotion");
    Ok(())
}
