//! Incremental single-source shortest paths (paper §V-C): maintain
//! distance annotations across batches of random edge additions and
//! removals, comparing selective enablement against full scans.
//!
//! Run: `cargo run --release --example sssp_incremental`

use ripple::graph::generate::{random_change_batch, random_undirected};
use ripple::graph::sssp::{bfs_oracle, FullScanInstance, SelectiveInstance};
use ripple::prelude::*;

fn main() -> Result<(), EbspError> {
    let n = 3000;
    let mut graph = random_undirected(n, 27_000, 0.8, 99);
    let source = 0;
    println!(
        "{n} vertices, ~{} undirected edges, source {source}",
        graph.graph().edge_count() / 2
    );

    let sel_store = MemStore::builder().default_parts(6).build();
    let (selective, init_metrics) =
        SelectiveInstance::initialize(&sel_store, "sel", graph.graph(), source)?;
    println!(
        "initial solve (selective): {:.3}s, {} invocations",
        init_metrics.elapsed.as_secs_f64(),
        init_metrics.invocations
    );

    let fs_store = MemStore::builder().default_parts(6).build();
    let (full_scan, _) = FullScanInstance::initialize(&fs_store, "fs", graph.graph(), source)?;

    let mut sel_total = 0.0;
    let mut fs_total = 0.0;
    for round in 0..5u64 {
        let batch = random_change_batch(n, 50, 0.8, 7000 + round);
        for c in &batch {
            graph.apply(*c);
        }
        let sel_metrics = selective.apply_batch(&batch)?;
        let fs_metrics = full_scan.apply_batch(&batch)?;
        sel_total += sel_metrics.elapsed.as_secs_f64();
        fs_total += fs_metrics.elapsed.as_secs_f64();
        println!(
            "batch {round}: selective {:>6} invocations / {:.4}s   \
             full-scan {:>8} invocations / {:.4}s",
            sel_metrics.invocations,
            sel_metrics.elapsed.as_secs_f64(),
            fs_metrics.invocations,
            fs_metrics.elapsed.as_secs_f64()
        );
    }

    // Both variants agree with a BFS oracle on the final graph.
    let oracle = bfs_oracle(&graph, source);
    for (v, d) in selective.distances()? {
        assert_eq!(d, oracle[v as usize]);
    }
    for (v, d) in full_scan.distances()? {
        assert_eq!(d, oracle[v as usize]);
    }
    println!(
        "\nfive batches: selective {sel_total:.3}s vs full-scan {fs_total:.3}s \
         ({:.0}x) — both verified against BFS",
        fs_total / sel_total
    );
    Ok(())
}
