//! Incremental single-source shortest paths (paper §V-C): maintain
//! distance annotations across batches of random edge additions and
//! removals, comparing selective enablement against full scans — then
//! flip the control flow and *serve*: a resident job on a `JobServer`
//! drains streamed mutations from a queue, applies each batch as one
//! selective wave, and answers point queries from the last barrier's
//! consistent snapshot while the waves run.
//!
//! Run: `cargo run --release --example sssp_incremental`

use ripple::graph::generate::{random_change_batch, random_undirected};
use ripple::graph::sssp::{bfs_oracle, FullScanInstance, SelectiveInstance};
use ripple::prelude::*;

fn main() -> Result<(), EbspError> {
    let n = 3000;
    let mut graph = random_undirected(n, 27_000, 0.8, 99);
    let source = 0;
    println!(
        "{n} vertices, ~{} undirected edges, source {source}",
        graph.graph().edge_count() / 2
    );

    let sel_store = MemStore::builder().default_parts(6).build();
    let (selective, init_metrics) =
        SelectiveInstance::initialize(&sel_store, "sel", graph.graph(), source)?;
    println!(
        "initial solve (selective): {:.3}s, {} invocations",
        init_metrics.elapsed.as_secs_f64(),
        init_metrics.invocations
    );

    let fs_store = MemStore::builder().default_parts(6).build();
    let (full_scan, _) = FullScanInstance::initialize(&fs_store, "fs", graph.graph(), source)?;

    let mut sel_total = 0.0;
    let mut fs_total = 0.0;
    for round in 0..5u64 {
        let batch = random_change_batch(n, 50, 0.8, 7000 + round);
        for c in &batch {
            graph.apply(*c);
        }
        let sel_metrics = selective.apply_batch(&batch)?;
        let fs_metrics = full_scan.apply_batch(&batch)?;
        sel_total += sel_metrics.elapsed.as_secs_f64();
        fs_total += fs_metrics.elapsed.as_secs_f64();
        println!(
            "batch {round}: selective {:>6} invocations / {:.4}s   \
             full-scan {:>8} invocations / {:.4}s",
            sel_metrics.invocations,
            sel_metrics.elapsed.as_secs_f64(),
            fs_metrics.invocations,
            fs_metrics.elapsed.as_secs_f64()
        );
    }

    // Both variants agree with a BFS oracle on the final graph.
    let oracle = bfs_oracle(&graph, source);
    for (v, d) in selective.distances()? {
        assert_eq!(d, oracle[v as usize]);
    }
    for (v, d) in full_scan.distances()? {
        assert_eq!(d, oracle[v as usize]);
    }
    println!(
        "\nfive batches: selective {sel_total:.3}s vs full-scan {fs_total:.3}s \
         ({:.0}x) — both verified against BFS",
        fs_total / sel_total
    );

    serving_mode(n)?;
    Ok(())
}

/// Serving mode: mutations stream through a queue into selective waves
/// on a resident job, and point queries read the last barrier snapshot —
/// they never wait for a wave.
fn serving_mode(n: u32) -> Result<(), EbspError> {
    println!("\n-- serving mode --");
    let mut graph = random_undirected(n, u64::from(n) * 9, 0.8, 424_242);
    let source = 0;

    let store = MemStore::builder().default_parts(6).build();
    let server = JobServer::single(ServerConfig::with_workers(4), store);
    let serving = ServingSssp::start(&server, "serve", JobSpec::new(6), graph.graph(), source)
        .expect("admission refused");
    println!(
        "resident job admitted; initial solve done (snapshot version {})",
        serving.version()
    );

    // Stream mutations while issuing point queries between barriers.
    let mut latencies_us: Vec<f64> = Vec::new();
    for round in 0..10u64 {
        let batch = random_change_batch(n, 25, 0.8, 31_000 + round);
        for c in &batch {
            graph.apply(*c);
        }
        serving.push_batch(&batch);
        for q in 0..50u64 {
            let v = ((round * 50 + q) * 2_654_435_761 % u64::from(n)) as u32;
            let t = std::time::Instant::now();
            let answer = serving.query(v);
            latencies_us.push(t.elapsed().as_secs_f64() * 1e6);
            let _ = answer.reachable();
        }
    }
    while serving.pending() > 0 {
        std::thread::sleep(std::time::Duration::from_millis(1));
    }

    let mean = latencies_us.iter().sum::<f64>() / latencies_us.len() as f64;
    let max = latencies_us.iter().cloned().fold(0.0, f64::max);
    println!(
        "{} point queries during {} mutation waves: {mean:.1} us mean, \
         {max:.1} us max (snapshot version {})",
        latencies_us.len(),
        serving.waves(),
        serving.version()
    );

    let report = serving.finish()?;
    println!(
        "served {} mutations in {} waves, {} snapshot refreshes",
        report.mutations_applied, report.waves, report.refreshes
    );

    // The served distances agree with a BFS oracle over the mutated graph.
    let table = server.store(0).lookup_table("serve__sssp")?;
    let snapshot = server.store(0).snapshot_table(&table)?;
    let oracle = bfs_oracle(&graph, source);
    for (v, d) in ripple::graph::sssp::distances_from_snapshot(&snapshot)? {
        assert_eq!(d, oracle[v as usize]);
    }
    println!("served distances verified against BFS");
    println!("\nper-job accounting:\n{}", server.accounting_json());
    Ok(())
}
