//! Convergence-driven PageRank: the **aborter** (paper §II) watches a
//! `delta` aggregator and stops the job as soon as the ranks stop moving —
//! no fixed iteration count.  Also shows store portability: the same
//! computation runs on the partitioned debugging store and on the minimal
//! reference store.
//!
//! Run: `cargo run --release --example adaptive_pagerank`

use ripple::graph::generate::power_law_graph;
use ripple::graph::pagerank::{
    read_ranks, reference_ranks, run_adaptive, run_direct, PageRankConfig,
};
use ripple::prelude::*;
use ripple::store_simple::SimpleStore;

fn main() -> Result<(), EbspError> {
    let graph = power_law_graph(1500, 20_000, 0.8, 2026);
    let epsilon = 1e-8;

    let store = MemStore::builder().default_parts(6).build();
    let outcome = run_adaptive(&store, "apr", &graph, 0.85, epsilon, 500)?;
    println!(
        "adaptive run stopped after {} iterations (aborted: {}), {:.3}s",
        outcome.steps,
        outcome.aborted,
        outcome.metrics.elapsed.as_secs_f64()
    );
    assert!(
        outcome.aborted,
        "the aborter, not the step limit, stopped it"
    );

    // Compare against a long fixed-iteration reference.
    let reference = reference_ranks(
        &graph,
        PageRankConfig {
            damping: 0.85,
            iterations: 200,
        },
    );
    let ranks = read_ranks(&store, "apr")?;
    let worst = ranks
        .iter()
        .map(|(v, r)| (r - reference[*v as usize]).abs())
        .fold(0.0f64, f64::max);
    println!("max |rank - fixed-point| = {worst:.2e}");
    assert!(worst < 1e-5);

    // The same computation, unchanged, on a different store implementation.
    let simple = SimpleStore::new(6);
    let fixed = PageRankConfig {
        damping: 0.85,
        iterations: outcome.steps,
    };
    run_direct(&simple, "pr_simple", &graph, fixed)?;
    println!(
        "same job on SimpleStore: {} tables live, zero marshalling ({} ops, all local)",
        simple.table_names().len(),
        simple.metrics().local_ops,
    );
    Ok(())
}
