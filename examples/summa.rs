//! SUMMA dense matrix multiplication (paper §V-B): the same pipelined
//! block schedule run BSP-synchronized and with no synchronization at all,
//! verified against the sequential kernel.
//!
//! Run: `cargo run --release --example summa`

use ripple::prelude::*;
use ripple::summa::{multiply, DenseMatrix, SummaOptions};

fn main() -> Result<(), EbspError> {
    let dim = 3 * 48;
    let a = DenseMatrix::random(dim, dim, 7);
    let b = DenseMatrix::random(dim, dim, 8);
    let reference = a.multiply(&b);
    println!("C = A x B for {dim}x{dim} matrices on a 3x3 component grid");

    // With barriers — and the Table II schedule trace.
    let store = MemStore::builder().default_parts(3).build();
    let (c_sync, report) = multiply(
        &store,
        &a,
        &b,
        &SummaOptions {
            grid: 3,
            mode: ExecMode::Synchronized,
            trace: true,
            ..SummaOptions::default()
        },
    )?;
    assert!(c_sync.approx_eq(&reference, 1e-9));
    let trace = report.multiplies_per_step.expect("trace was requested");
    println!(
        "synchronized:   {} steps, block multiplies per step {:?} (Table II)",
        report.outcome.steps, trace
    );
    println!(
        "                {:.3}s, {} barriers",
        report.outcome.metrics.elapsed.as_secs_f64(),
        report.outcome.metrics.barriers
    );

    // Without barriers: same job, no waiting.
    let store = MemStore::builder().default_parts(3).build();
    let (c_nosync, report) = multiply(
        &store,
        &a,
        &b,
        &SummaOptions {
            grid: 3,
            mode: ExecMode::Unsynchronized,
            trace: false,
            ..SummaOptions::default()
        },
    )?;
    assert!(c_nosync.approx_eq(&reference, 1e-9));
    println!(
        "unsynchronized: {:.3}s, {} barriers, {} invocations",
        report.outcome.metrics.elapsed.as_secs_f64(),
        report.outcome.metrics.barriers,
        report.outcome.metrics.invocations
    );
    println!("both results match the sequential kernel");
    Ok(())
}
