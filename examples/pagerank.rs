//! PageRank, both ways (paper §V-A): rank a generated biased power-law
//! graph with the direct K/V EBSP formulation and with the emulated
//! iterated-MapReduce formulation, verify they agree with a sequential
//! reference, and compare their cost profiles.
//!
//! Run: `cargo run --release --example pagerank`

use ripple::graph::generate::power_law_graph;
use ripple::graph::pagerank::{
    read_ranks, reference_ranks, run_direct, run_mapreduce_variant, PageRankConfig,
};
use ripple::prelude::*;

fn main() -> Result<(), EbspError> {
    let graph = power_law_graph(2000, 30_000, 0.8, 42);
    let config = PageRankConfig {
        damping: 0.85,
        iterations: 15,
    };
    println!(
        "ranking {} vertices / {} edges, {} iterations",
        graph.vertex_count(),
        graph.edge_count(),
        config.iterations
    );

    let direct_store = MemStore::builder().default_parts(6).build();
    let direct = run_direct(&direct_store, "pr", &graph, config)?;
    let direct_ranks = read_ranks(&direct_store, "pr")?;

    let mr_store = MemStore::builder().default_parts(6).build();
    let mr = run_mapreduce_variant(&mr_store, "pr", &graph, config)?;
    let mr_ranks = read_ranks(&mr_store, "pr")?;

    // All three computations agree.
    let reference = reference_ranks(&graph, config);
    for ((v, r_direct), (_, r_mr)) in direct_ranks.iter().zip(&mr_ranks) {
        let want = reference[*v as usize];
        assert!((r_direct - want).abs() < 1e-10);
        assert!((r_mr - want).abs() < 1e-10);
    }
    let mass: f64 = direct_ranks.iter().map(|(_, r)| r).sum();
    println!("rank mass: {mass:.9} (should be 1)");

    println!("\n                     direct     mapreduce-variant");
    println!(
        "synchronizations  {:>9} {:>17}",
        direct.metrics.barriers, mr.metrics.barriers
    );
    println!(
        "state reads       {:>9} {:>17}",
        direct.metrics.state_reads, mr.metrics.state_reads
    );
    println!(
        "state writes      {:>9} {:>17}",
        direct.metrics.state_writes, mr.metrics.state_writes
    );
    println!(
        "invocations       {:>9} {:>17}",
        direct.metrics.invocations, mr.metrics.invocations
    );
    println!(
        "elapsed           {:>8.3}s {:>16.3}s",
        direct.metrics.elapsed.as_secs_f64(),
        mr.metrics.elapsed.as_secs_f64()
    );

    let top = {
        let mut ranked = direct_ranks.clone();
        ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("ranks are finite"));
        ranked.truncate(5);
        ranked
    };
    println!("\ntop 5 vertices by rank:");
    for (v, r) in top {
        println!("  vertex {v:>5}: {r:.6}");
    }
    Ok(())
}
