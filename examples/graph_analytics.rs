//! Graph EBSP — the Pregel-like layer (Figure 2): connected components and
//! frontier-driven BFS written purely against the vertex-centric API, with
//! selective enablement doing the scheduling underneath.
//!
//! Run: `cargo run --example graph_analytics`

use ripple::graph::algorithms::{bfs, connected_components, degree_counts};
use ripple::graph::generate::{GraphChange, MutableGraph};
use ripple::graph::INF;
use ripple::prelude::*;

fn main() -> Result<(), EbspError> {
    // Two islands and a hermit.
    let mut g = MutableGraph::new(12);
    for (u, v) in [(0, 1), (1, 2), (2, 3), (3, 0)] {
        g.apply(GraphChange::AddEdge(u, v));
    }
    for (u, v) in [(5, 6), (6, 7), (7, 8), (8, 9), (9, 5), (5, 7)] {
        g.apply(GraphChange::AddEdge(u, v));
    }
    let graph = g.graph().clone();

    let store = MemStore::builder().default_parts(4).build();

    let labels = connected_components(&store, "cc", &graph)?;
    println!("connected components (vertex -> smallest member):");
    for (v, label) in &labels {
        println!("  {v:>2} -> {label}");
    }
    assert_eq!(labels[6], (6, 5));
    assert_eq!(labels[10], (10, 10), "hermits label themselves");

    let dists = bfs(&store, "bfs", &graph, 5)?;
    println!("\nhop distances from vertex 5:");
    for (v, d) in &dists {
        let shown = if *d == INF {
            "unreachable".to_owned()
        } else {
            d.to_string()
        };
        println!("  {v:>2}: {shown}");
    }
    assert_eq!(dists[8].1, 2);
    assert_eq!(dists[0].1, INF);

    let degrees = degree_counts(&store, "deg", &graph)?;
    let max = degrees.iter().max_by_key(|(_, d)| *d).expect("non-empty");
    println!("\nhighest degree: vertex {} with {} edges", max.0, max.1);
    Ok(())
}
