//! Quickstart: the K/V EBSP programming model in five minutes.
//!
//! A tiny iterative analytic: simulate compound interest per account until
//! each account doubles, with an aggregator watching how many accounts are
//! still growing.  It shows the essentials — state tables, selective
//! enablement via the continue signal, aggregators, and reading results
//! back out of the store.
//!
//! Run: `cargo run --example quickstart`

use std::sync::Arc;

use ripple::prelude::*;

/// One component per account; state is the balance; no messages needed —
/// each account works alone, driven by its continue signal.
struct DoubleYourMoney {
    rate: f64,
}

impl Job for DoubleYourMoney {
    type Key = u32; // account id
    type State = (f64, f64); // (initial, current balance)
    type Message = ();
    type OutKey = ();
    type OutValue = ();

    fn state_tables(&self) -> Vec<String> {
        vec!["balances".to_owned()]
    }

    fn aggregators(&self) -> Vec<(String, Arc<dyn Aggregate>)> {
        vec![("growing".to_owned(), Arc::new(ripple::ebsp::SumI64))]
    }

    fn compute(&self, ctx: &mut ComputeContext<'_, Self>) -> Result<bool, EbspError> {
        let (initial, balance) = ctx.read_state(0)?.expect("loaded by the loader");
        let grown = balance * (1.0 + self.rate);
        ctx.write_state(0, &(initial, grown))?;
        let still_growing = grown < 2.0 * initial;
        if still_growing {
            ctx.aggregate("growing", AggValue::I64(1))?;
        }
        // The continue signal: stay enabled only while under the target.
        Ok(still_growing)
    }
}

fn main() -> Result<(), EbspError> {
    // A store with 4 parts; tables and computation are spread across them.
    let store = MemStore::builder().default_parts(4).build();

    let job = Arc::new(DoubleYourMoney { rate: 0.07 });
    let outcome = JobRunner::new(store.clone()).launch(
        job,
        RunOptions::new().loaders(vec![Box::new(FnLoader::new(
            |sink: &mut dyn LoadSink<DoubleYourMoney>| {
                for account in 0..8u32 {
                    let opening = 100.0 * f64::from(account + 1);
                    sink.state(0, account, (opening, opening))?;
                    sink.enable(account)?;
                }
                Ok(())
            },
        ))]),
    )?;

    println!(
        "converged in {} steps ({} component invocations, {} barriers)",
        outcome.steps, outcome.metrics.invocations, outcome.metrics.barriers
    );

    // Results live in the key/value store; export them.
    let table = store.lookup_table("balances").map_err(EbspError::Kv)?;
    let exporter = Arc::new(CollectingExporter::<u32, (f64, f64)>::new());
    export_state_table(&store, &table, Arc::clone(&exporter))?;
    let mut rows = exporter.take();
    rows.sort_by_key(|(k, _)| *k);
    for (account, (initial, balance)) in rows {
        println!("account {account}: {initial:>8.2} -> {balance:>8.2}");
        assert!(balance >= 2.0 * initial);
    }

    // At 7% compound interest everything doubles in 11 periods.
    assert_eq!(outcome.steps, 11);
    Ok(())
}
