//! MapReduce layered on K/V EBSP (Figure 2): classic word count plus an
//! iterated k-means-flavored refinement, showing the couplet costs the
//! direct EBSP formulations avoid.
//!
//! Run: `cargo run --example mapreduce_wordcount`

use std::sync::Arc;

use ripple::mapreduce::{run_map_reduce, IteratedMapReduce, MapReduce};
use ripple::prelude::*;

struct WordCount;

impl MapReduce for WordCount {
    type InKey = u32;
    type InValue = String;
    type MidKey = String;
    type MidValue = u64;
    type OutValue = u64;

    fn map(&self, _doc: &u32, text: &String, emit: &mut dyn FnMut(String, u64)) {
        for word in text.split_whitespace() {
            emit(word.to_lowercase(), 1);
        }
    }

    fn reduce(&self, _word: &String, counts: Vec<u64>) -> Option<u64> {
        Some(counts.into_iter().sum())
    }

    fn combine(&self, _word: &String, a: &u64, b: &u64) -> Option<u64> {
        Some(a + b)
    }
}

/// An iterative couplet: each round moves every value halfway toward the
/// mean of its bucket — a toy smoothing analytic that needs iteration.
struct Smooth;

impl MapReduce for Smooth {
    type InKey = u32;
    type InValue = f64;
    type MidKey = u32;
    type MidValue = f64;
    type OutValue = f64;

    fn map(&self, k: &u32, v: &f64, emit: &mut dyn FnMut(u32, f64)) {
        // Bucket neighbors exchange values.
        emit(*k, *v);
        emit(k ^ 1, *v);
    }

    fn reduce(&self, _k: &u32, values: Vec<f64>) -> Option<f64> {
        let mean = values.iter().sum::<f64>() / values.len() as f64;
        Some(mean)
    }
}

fn main() -> Result<(), EbspError> {
    let store = MemStore::builder().default_parts(4).build();

    // --- One couplet: word count -----------------------------------------
    let docs = vec![
        (
            1u32,
            "the quick brown fox jumps over the lazy dog".to_owned(),
        ),
        (2, "The dog barks and the fox runs".to_owned()),
        (3, "quick quick slow".to_owned()),
    ];
    let mut counts = run_map_reduce(&store, Arc::new(WordCount), docs)?;
    counts.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    println!("word counts:");
    for (word, n) in counts.iter().take(6) {
        println!("  {word:>8}: {n}");
    }
    assert_eq!(
        counts.first().map(|(w, n)| (w.as_str(), *n)),
        Some(("the", 4))
    );

    // --- Iterated couplets -------------------------------------------------
    let input: Vec<(u32, f64)> = (0..8u32).map(|k| (k, f64::from(k))).collect();
    let driver = IteratedMapReduce::new(Arc::new(Smooth), 32);
    let (out, report) = driver.run(
        &store,
        input,
        |k, v| (*k, *v),
        |_iter, out| {
            // Converged when paired buckets agree.
            out.chunks(2)
                .all(|pair| pair.len() < 2 || (pair[0].1 - pair[1].1).abs() < 1e-9)
        },
    )?;
    println!(
        "\nsmoothing converged after {} iterations — {} steps, {} barriers \
         (two of each per iteration: the cost iterated MapReduce pays)",
        report.iterations, report.steps, report.barriers
    );
    assert_eq!(report.barriers, 2 * report.iterations);
    for (k, v) in out {
        println!("  bucket {k}: {v:.4}");
    }
    Ok(())
}
