//! Offline stand-in for the `rand` crate.
//!
//! Provides the API slice this workspace uses — [`rngs::StdRng`],
//! [`SeedableRng::seed_from_u64`], [`Rng::gen_range`] over integer and
//! float ranges, and [`Rng::gen_bool`] — backed by the SplitMix64 mixing
//! function.  Deterministic for a given seed, which is all the callers
//! (seeded graph/matrix generators) rely on; statistical quality beyond
//! that is not a goal.

use std::ops::Range;

/// The subset of `rand::Rng` the workspace consumes.
pub trait Rng {
    /// The raw 64-bit source every derived method builds on.
    fn next_u64(&mut self) -> u64;

    /// Uniformly samples from a half-open range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(&mut || self.next_u64())
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability {p}");
        unit_f64(self.next_u64()) < p
    }
}

/// The subset of `rand::SeedableRng` the workspace consumes.
pub trait SeedableRng: Sized {
    /// Builds a generator whose whole stream is determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Maps a raw word to `[0, 1)`.
fn unit_f64(word: u64) -> f64 {
    (word >> 11) as f64 / (1u64 << 53) as f64
}

/// Ranges that [`Rng::gen_range`] can sample.
pub trait SampleRange<T> {
    fn sample_from(self, next: &mut dyn FnMut() -> u64) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample_from(self, next: &mut dyn FnMut() -> u64) -> f64 {
        assert!(self.start < self.end, "empty gen_range {self:?}");
        self.start + unit_f64(next()) * (self.end - self.start)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_from(self, next: &mut dyn FnMut() -> u64) -> f32 {
        assert!(self.start < self.end, "empty gen_range {self:?}");
        self.start + (unit_f64(next()) as f32) * (self.end - self.start)
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from(self, next: &mut dyn FnMut() -> u64) -> $t {
                assert!(self.start < self.end, "empty gen_range {self:?}");
                let width = (self.end as i128 - self.start as i128) as u128;
                let offset = (next() as u128) % width;
                (self.start as i128 + offset as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic generator driven by SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            Self { state: seed }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: f64 = rng.gen_range(0.0..3.5);
            assert!((0.0..3.5).contains(&x));
            let n: u32 = rng.gen_range(5u32..17);
            assert!((5..17).contains(&n));
            let s: i64 = rng.gen_range(-9i64..-2);
            assert!((-9..-2).contains(&s));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((1_500..3_500).contains(&hits), "hits {hits}");
    }
}
