//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! the proptest API surface its tests use: the [`proptest!`] macro (typed
//! and `name in strategy` parameters, optional `#![proptest_config]`),
//! [`Strategy`] with `prop_map`/`prop_flat_map`, [`any`], range and tuple
//! strategies, [`collection`] strategies, [`prop_oneof!`], and the
//! `prop_assert*` macros.
//!
//! Cases are generated from a deterministic per-test seed, so failures
//! reproduce; there is **no shrinking** — a failing case reports its
//! values via the assertion message instead.

use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::marker::PhantomData;
use std::ops::Range;

// ---------------------------------------------------------------------------
// RNG
// ---------------------------------------------------------------------------

/// Deterministic generator (SplitMix64) driving all case generation.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Seeds from a test name so every test has a stable stream.
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        Self::new(h)
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: usize) -> usize {
        (self.next_u64() % bound as u64) as usize
    }
}

// ---------------------------------------------------------------------------
// Test-case plumbing
// ---------------------------------------------------------------------------

/// Failure raised by `prop_assert*` and propagated out of a test case.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// The property did not hold.
    Fail(String),
    /// The input was rejected (unused by this shim's strategies, kept for
    /// API compatibility).
    Reject(String),
}

impl TestCaseError {
    pub fn fail(reason: impl Into<String>) -> Self {
        Self::Fail(reason.into())
    }

    pub fn reject(reason: impl Into<String>) -> Self {
        Self::Reject(reason.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Fail(r) => write!(f, "property failed: {r}"),
            Self::Reject(r) => write!(f, "input rejected: {r}"),
        }
    }
}

impl std::error::Error for TestCaseError {}

/// Per-block configuration; only `cases` is consulted.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

// ---------------------------------------------------------------------------
// Strategy
// ---------------------------------------------------------------------------

/// A recipe for generating values of one type.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }

    fn prop_flat_map<O, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        O: Strategy,
        F: Fn(Self::Value) -> O,
    {
        FlatMap { source: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Always produces a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The result of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.generate(rng))
    }
}

/// The result of [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    source: S,
    f: F,
}

impl<S, O, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    O: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O::Value;

    fn generate(&self, rng: &mut TestRng) -> O::Value {
        (self.f)(self.source.generate(rng)).generate(rng)
    }
}

/// Uniform choice between boxed alternatives — built by [`prop_oneof!`].
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Self { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let arm = rng.below(self.arms.len());
        self.arms[arm].generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy {self:?}");
                let width = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % width;
                (self.start as i128 + offset as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy {self:?}");
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident / $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A/0, B/1)
    (A/0, B/1, C/2)
    (A/0, B/1, C/2, D/3)
    (A/0, B/1, C/2, D/3, E/4)
    (A/0, B/1, C/2, D/3, E/4, F/5)
}

// ---------------------------------------------------------------------------
// Arbitrary / any
// ---------------------------------------------------------------------------

/// Types with a default generation recipe, reachable via [`any`].
pub trait Arbitrary {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The strategy produced by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Any(PhantomData)
    }
}

impl<T> fmt::Debug for Any<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("any::<_>()")
    }
}

/// The default strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                // Weight the edges: small values and extremes are where
                // codec and arithmetic bugs live.
                match rng.next_u64() % 8 {
                    0 => 0 as $t,
                    1 => <$t>::MAX,
                    2 => <$t>::MIN,
                    3 => (rng.next_u64() % 256) as $t,
                    _ => rng.next_u64() as $t,
                }
            }
        }
    )*};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        match rng.next_u64() % 8 {
            0 => 0.0,
            1 => -0.0,
            2 => f64::INFINITY,
            3 => f64::NEG_INFINITY,
            4 => f64::NAN,
            // Arbitrary bit patterns cover subnormals and extremes.
            _ => f64::from_bits(rng.next_u64()),
        }
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        f64::arbitrary(rng) as f32
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> char {
        match rng.next_u64() % 4 {
            0 => char::from_u32(0x20 + (rng.next_u64() % 0x5f) as u32).unwrap(),
            1 => char::from_u32((rng.next_u64() % 0xd800) as u32).unwrap_or('\u{fffd}'),
            2 => '\u{0}',
            _ => ['λ', '中', '🦀', 'ß', '\n', '"'][rng.below(6)],
        }
    }
}

impl Arbitrary for String {
    fn arbitrary(rng: &mut TestRng) -> String {
        let len = rng.below(13);
        (0..len).map(|_| char::arbitrary(rng)).collect()
    }
}

impl<T: Arbitrary> Arbitrary for Option<T> {
    fn arbitrary(rng: &mut TestRng) -> Self {
        if rng.next_u64() % 4 == 0 {
            None
        } else {
            Some(T::arbitrary(rng))
        }
    }
}

impl<T: Arbitrary> Arbitrary for Vec<T> {
    fn arbitrary(rng: &mut TestRng) -> Self {
        let len = rng.below(17);
        (0..len).map(|_| T::arbitrary(rng)).collect()
    }
}

macro_rules! tuple_arbitrary {
    ($(($($t:ident),+))*) => {$(
        impl<$($t: Arbitrary),+> Arbitrary for ($($t,)+) {
            fn arbitrary(rng: &mut TestRng) -> Self {
                ($($t::arbitrary(rng),)+)
            }
        }
    )*};
}

tuple_arbitrary! {
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

// ---------------------------------------------------------------------------
// Collection strategies
// ---------------------------------------------------------------------------

pub mod collection {
    use super::*;

    /// A length range for collection strategies.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        start: usize,
        end: usize,
    }

    impl SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty collection size range");
            self.start + rng.below(self.end - self.start)
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            Self {
                start: r.start,
                end: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            Self {
                start: *r.start(),
                end: *r.end() + 1,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self {
                start: n,
                end: n + 1,
            }
        }
    }

    /// `Vec` strategy from an element strategy and a length range.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = self.size.pick(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `HashMap` strategy; key collisions may make a map smaller than the
    /// drawn size, as in real proptest.
    pub fn hash_map<K, V>(keys: K, values: V, size: impl Into<SizeRange>) -> HashMapStrategy<K, V>
    where
        K: Strategy,
        V: Strategy,
        K::Value: std::hash::Hash + Eq,
    {
        HashMapStrategy {
            keys,
            values,
            size: size.into(),
        }
    }

    #[derive(Debug, Clone)]
    pub struct HashMapStrategy<K, V> {
        keys: K,
        values: V,
        size: SizeRange,
    }

    impl<K, V> Strategy for HashMapStrategy<K, V>
    where
        K: Strategy,
        V: Strategy,
        K::Value: std::hash::Hash + Eq,
    {
        type Value = HashMap<K::Value, V::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = self.size.pick(rng);
            (0..len)
                .map(|_| (self.keys.generate(rng), self.values.generate(rng)))
                .collect()
        }
    }

    /// `BTreeMap` strategy; same collision caveat as [`hash_map`].
    pub fn btree_map<K, V>(keys: K, values: V, size: impl Into<SizeRange>) -> BTreeMapStrategy<K, V>
    where
        K: Strategy,
        V: Strategy,
        K::Value: Ord,
    {
        BTreeMapStrategy {
            keys,
            values,
            size: size.into(),
        }
    }

    #[derive(Debug, Clone)]
    pub struct BTreeMapStrategy<K, V> {
        keys: K,
        values: V,
        size: SizeRange,
    }

    impl<K, V> Strategy for BTreeMapStrategy<K, V>
    where
        K: Strategy,
        V: Strategy,
        K::Value: Ord,
    {
        type Value = BTreeMap<K::Value, V::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = self.size.pick(rng);
            (0..len)
                .map(|_| (self.keys.generate(rng), self.values.generate(rng)))
                .collect()
        }
    }
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Defines property tests.  Parameters may be `name: Type` (generated via
/// [`Arbitrary`]) or `name in strategy`; an optional leading
/// `#![proptest_config(...)]` sets the case count for the block.
#[macro_export]
macro_rules! proptest {
    // -- internal: bind one parameter list entry at a time --------------
    (@bind $rng:ident;) => {};
    (@bind $rng:ident; $name:ident in $strat:expr) => {
        let $name = $crate::Strategy::generate(&($strat), &mut $rng);
    };
    (@bind $rng:ident; $name:ident in $strat:expr, $($rest:tt)*) => {
        let $name = $crate::Strategy::generate(&($strat), &mut $rng);
        $crate::proptest!(@bind $rng; $($rest)*);
    };
    (@bind $rng:ident; $name:ident : $ty:ty) => {
        let $name: $ty = $crate::Arbitrary::arbitrary(&mut $rng);
    };
    (@bind $rng:ident; $name:ident : $ty:ty, $($rest:tt)*) => {
        let $name: $ty = $crate::Arbitrary::arbitrary(&mut $rng);
        $crate::proptest!(@bind $rng; $($rest)*);
    };
    // -- internal: emit each test fn -------------------------------------
    (@funcs ($cfg:expr)) => {};
    (@funcs ($cfg:expr) $(#[$meta:meta])* fn $name:ident($($params:tt)*) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::from_name(stringify!($name));
            for case in 0..config.cases {
                let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                    (|| -> ::std::result::Result<(), $crate::TestCaseError> {
                        $crate::proptest!(@bind rng; $($params)*);
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(err) = outcome {
                    ::std::panic!(
                        "[{}] case {}/{}: {}",
                        stringify!($name),
                        case + 1,
                        config.cases,
                        err
                    );
                }
            }
        }
        $crate::proptest!(@funcs ($cfg) $($rest)*);
    };
    // -- entry points -----------------------------------------------------
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@funcs ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@funcs ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Asserts a condition inside a property test, failing the case (not the
/// process) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                ::std::format!($($fmt)*),
            ));
        }
    };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(::std::format!(
                "assertion failed: `{:?}` == `{:?}`",
                left,
                right
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(::std::format!(
                "assertion failed: `{:?}` == `{:?}`: {}",
                left,
                right,
                ::std::format!($($fmt)*)
            )));
        }
    }};
}

/// Uniform choice between strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(::std::vec![$($crate::Strategy::boxed($arm)),+])
    };
}

// ---------------------------------------------------------------------------
// Prelude
// ---------------------------------------------------------------------------

pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_oneof, proptest, Arbitrary, BoxedStrategy, Just,
        ProptestConfig, Strategy, TestCaseError, TestRng,
    };

    /// Mirrors `proptest::prelude::prop`, giving `prop::collection::…`
    /// paths.
    pub mod prop {
        pub use crate::collection;
    }
}

#[cfg(test)]
mod tests {
    use crate::collection::vec;
    use crate::prelude::*;

    fn helper(v: &[i64]) -> Result<(), TestCaseError> {
        prop_assert!(v.len() < 1000, "far too long: {}", v.len());
        Ok(())
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Mixed typed and strategy parameters bind correctly.
        #[test]
        fn mixed_parameters(a: u64, s in vec(any::<i64>(), 0..8), flag: bool) {
            let _ = (a, flag);
            helper(&s)?;
            prop_assert!(s.len() < 8);
        }

        #[test]
        fn oneof_and_map_compose(
            v in prop_oneof![
                (0u32..10).prop_map(|n| n as u64),
                Just(99u64),
            ],
        ) {
            prop_assert!(v < 10 || v == 99, "got {v}");
        }
    }

    #[test]
    fn same_name_same_stream() {
        let mut a = TestRng::from_name("x");
        let mut b = TestRng::from_name("x");
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn flat_map_reaches_dependent_values() {
        let strat = (1usize..5).prop_flat_map(|n| vec(0u32..10, n..n + 1));
        let mut rng = TestRng::new(3);
        for _ in 0..50 {
            let v = strat.generate(&mut rng);
            assert!((1..5).contains(&v.len()));
        }
    }
}
