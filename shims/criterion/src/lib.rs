//! Offline stand-in for the `criterion` crate.
//!
//! Implements the macro and method surface the workspace benches use.
//! Instead of statistical sampling it runs each benchmark a small fixed
//! number of iterations and prints the mean wall-clock time — enough to
//! eyeball relative cost and to keep `cargo bench` compiling without
//! crates.io access.

use std::fmt;
use std::time::{Duration, Instant};

/// How many measured iterations each bench runs (after one warm-up).
const ITERATIONS: u32 = 10;

/// Top-level handle passed to bench functions.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _parent: self,
        }
    }
}

/// A named benchmark, optionally parameterized.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> Self {
        Self {
            text: format!("{}/{}", function.into(), parameter),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { text: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self { text: s }
    }
}

/// Batch sizing hints; ignored by this shim.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// A group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; this shim always runs a fixed
    /// iteration count.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn measurement_time(&mut self, _t: Duration) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            total: Duration::ZERO,
            iters: 0,
        };
        f(&mut bencher);
        let mean = if bencher.iters > 0 {
            bencher.total / bencher.iters
        } else {
            Duration::ZERO
        };
        println!(
            "{}/{}: mean {:?} over {} iters",
            self.name, id.text, mean, bencher.iters
        );
        self
    }

    /// `bench_function` with an explicit input borrowed by the routine.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |bencher| f(bencher, input))
    }

    pub fn finish(&mut self) {}
}

/// Runs the measured closure and accumulates timings.
pub struct Bencher {
    total: Duration,
    iters: u32,
}

impl Bencher {
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // Warm-up iteration, unmeasured.
        let _ = routine();
        for _ in 0..ITERATIONS {
            let start = Instant::now();
            let _ = routine();
            self.total += start.elapsed();
            self.iters += 1;
        }
    }

    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        let _ = routine(setup());
        for _ in 0..ITERATIONS {
            let input = setup();
            let start = Instant::now();
            let _ = routine(input);
            self.total += start.elapsed();
            self.iters += 1;
        }
    }
}

/// Prevents the optimizer from discarding a value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("g");
        group.sample_size(10);
        group.bench_function("plain", |b| b.iter(|| 1 + 1));
        group.bench_function(BenchmarkId::new("param", 32), |b| {
            b.iter_batched(|| vec![0u8; 32], |v| v.len(), BatchSize::LargeInput)
        });
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn group_runs_to_completion() {
        benches();
    }
}
