//! Offline stand-in for the `loom` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the API slice its concurrency models use: [`model`],
//! [`thread`], and [`sync`] wrappers over the std primitives.
//!
//! **This is not an exhaustive model checker.**  Real loom enumerates
//! every legal interleaving; this shim is a *seeded preemption fuzzer*:
//! [`model`] runs the closure many times, and every wrapped lock, condvar,
//! and atomic operation consults a deterministic per-iteration RNG to
//! decide whether to yield (or briefly sleep) at that point, driving the
//! OS scheduler through a different interleaving per iteration.  Models
//! written against this shim compile unchanged against real loom — swap
//! the dependency when crates.io access is available and the same tests
//! become exhaustive.

use std::sync::atomic::{AtomicU64 as StdAtomicU64, Ordering as StdOrdering};

/// Iterations one [`model`] call explores.
const ITERATIONS: u64 = 64;

/// Global schedule state for the current model iteration.
static SCHEDULE_SEED: StdAtomicU64 = StdAtomicU64::new(0);
static SCHEDULE_CLOCK: StdAtomicU64 = StdAtomicU64::new(0);

/// Called by every wrapped synchronization operation: advances the
/// iteration's deterministic sequence and preempts the calling thread at
/// a seed-dependent subset of points.
fn preemption_point() {
    let seed = SCHEDULE_SEED.load(StdOrdering::Relaxed);
    if seed == 0 {
        return; // outside a model run: wrappers behave like plain std
    }
    let tick = SCHEDULE_CLOCK.fetch_add(1, StdOrdering::Relaxed);
    // xorshift* over (seed, tick): cheap, deterministic, full-period.
    let mut x = seed ^ tick.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    let draw = x.wrapping_mul(0x2545_f491_4f6c_dd1d);
    if draw % 7 == 0 {
        std::thread::yield_now();
    } else if draw % 61 == 0 {
        // A longer stall lets a racing thread run a whole critical section.
        std::thread::sleep(std::time::Duration::from_micros(50));
    }
}

/// Runs `f` under [`ITERATIONS`] seeded preemption schedules.
///
/// # Panics
///
/// Propagates any panic from `f` (the failing iteration's seed is printed
/// first so the schedule can be replayed by fixing `SCHEDULE_SEED`).
pub fn model<F>(f: F)
where
    F: Fn() + Send + Sync + 'static,
{
    for iteration in 1..=ITERATIONS {
        SCHEDULE_SEED.store(
            iteration.wrapping_mul(0x5851_f42d_4c95_7f2d) | 1,
            StdOrdering::SeqCst,
        );
        SCHEDULE_CLOCK.store(0, StdOrdering::SeqCst);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(&f));
        SCHEDULE_SEED.store(0, StdOrdering::SeqCst);
        if let Err(panic) = result {
            eprintln!("loom (shim) model failed on iteration {iteration}/{ITERATIONS}");
            std::panic::resume_unwind(panic);
        }
    }
}

pub mod thread {
    //! Preemption-aware forwarding of `std::thread`.

    pub use std::thread::JoinHandle;

    /// Spawns a model thread; the spawn itself is a preemption point.
    pub fn spawn<F, T>(f: F) -> JoinHandle<T>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        super::preemption_point();
        std::thread::spawn(f)
    }

    /// Explicit yield, mirroring `loom::thread::yield_now`.
    pub fn yield_now() {
        std::thread::yield_now();
    }
}

pub mod sync {
    //! Preemption-injecting wrappers over `std::sync`.

    pub use std::sync::{Arc, LockResult, MutexGuard, WaitTimeoutResult};

    /// `std::sync::Mutex` with a preemption point before each acquisition.
    #[derive(Debug, Default)]
    pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

    impl<T> Mutex<T> {
        pub fn new(value: T) -> Self {
            Self(std::sync::Mutex::new(value))
        }

        pub fn into_inner(self) -> LockResult<T> {
            self.0.into_inner()
        }
    }

    impl<T: ?Sized> Mutex<T> {
        /// # Errors
        ///
        /// Returns the poison error exactly as `std::sync::Mutex` does.
        pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
            super::preemption_point();
            let guard = self.0.lock();
            super::preemption_point();
            guard
        }
    }

    /// `std::sync::Condvar` with preemption points around waits and
    /// notifications.
    #[derive(Debug, Default)]
    pub struct Condvar(std::sync::Condvar);

    impl Condvar {
        pub fn new() -> Self {
            Self::default()
        }

        /// # Errors
        ///
        /// Returns the poison error exactly as `std::sync::Condvar` does.
        pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> LockResult<MutexGuard<'a, T>> {
            super::preemption_point();
            self.0.wait(guard)
        }

        /// # Errors
        ///
        /// Returns the poison error exactly as `std::sync::Condvar` does.
        pub fn wait_timeout<'a, T>(
            &self,
            guard: MutexGuard<'a, T>,
            dur: std::time::Duration,
        ) -> LockResult<(MutexGuard<'a, T>, WaitTimeoutResult)> {
            super::preemption_point();
            self.0.wait_timeout(guard, dur)
        }

        pub fn notify_one(&self) {
            super::preemption_point();
            self.0.notify_one();
        }

        pub fn notify_all(&self) {
            super::preemption_point();
            self.0.notify_all();
        }
    }

    pub mod atomic {
        //! Preemption-injecting wrappers over `std::sync::atomic`.

        pub use std::sync::atomic::Ordering;

        /// Preemption-injecting `AtomicU64`.
        #[derive(Debug, Default)]
        pub struct AtomicU64(std::sync::atomic::AtomicU64);

        impl AtomicU64 {
            pub fn new(value: u64) -> Self {
                Self(std::sync::atomic::AtomicU64::new(value))
            }

            pub fn load(&self, order: Ordering) -> u64 {
                crate::preemption_point();
                self.0.load(order)
            }

            pub fn store(&self, value: u64, order: Ordering) {
                crate::preemption_point();
                self.0.store(value, order);
            }

            pub fn fetch_add(&self, value: u64, order: Ordering) -> u64 {
                crate::preemption_point();
                self.0.fetch_add(value, order)
            }

            pub fn fetch_sub(&self, value: u64, order: Ordering) -> u64 {
                crate::preemption_point();
                self.0.fetch_sub(value, order)
            }
        }

        /// Preemption-injecting `AtomicUsize`.
        #[derive(Debug, Default)]
        pub struct AtomicUsize(std::sync::atomic::AtomicUsize);

        impl AtomicUsize {
            pub fn new(value: usize) -> Self {
                Self(std::sync::atomic::AtomicUsize::new(value))
            }

            pub fn load(&self, order: Ordering) -> usize {
                crate::preemption_point();
                self.0.load(order)
            }

            pub fn store(&self, value: usize, order: Ordering) {
                crate::preemption_point();
                self.0.store(value, order);
            }

            pub fn fetch_add(&self, value: usize, order: Ordering) -> usize {
                crate::preemption_point();
                self.0.fetch_add(value, order)
            }
        }

        /// Preemption-injecting `AtomicBool`.
        #[derive(Debug, Default)]
        pub struct AtomicBool(std::sync::atomic::AtomicBool);

        impl AtomicBool {
            pub fn new(value: bool) -> Self {
                Self(std::sync::atomic::AtomicBool::new(value))
            }

            pub fn load(&self, order: Ordering) -> bool {
                crate::preemption_point();
                self.0.load(order)
            }

            pub fn store(&self, value: bool, order: Ordering) {
                crate::preemption_point();
                self.0.store(value, order);
            }

            pub fn swap(&self, value: bool, order: Ordering) -> bool {
                crate::preemption_point();
                self.0.swap(value, order)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::sync::atomic::{AtomicU64, Ordering};
    use super::sync::{Arc, Mutex};

    #[test]
    fn model_runs_and_schedules_vary() {
        let total = Arc::new(std::sync::atomic::AtomicU64::new(0));
        let t = Arc::clone(&total);
        super::model(move || {
            t.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
        });
        assert_eq!(total.load(std::sync::atomic::Ordering::SeqCst), 64);
    }

    #[test]
    fn wrapped_primitives_behave_like_std() {
        super::model(|| {
            let m = Arc::new(Mutex::new(0u64));
            let a = Arc::new(AtomicU64::new(0));
            let handles: Vec<_> = (0..2)
                .map(|_| {
                    let m = Arc::clone(&m);
                    let a = Arc::clone(&a);
                    super::thread::spawn(move || {
                        *m.lock().unwrap() += 1;
                        a.fetch_add(1, Ordering::SeqCst);
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            assert_eq!(*m.lock().unwrap(), 2);
            assert_eq!(a.load(Ordering::SeqCst), 2);
        });
    }
}
