//! Offline stand-in for the `crossbeam` crate.
//!
//! Provides `crossbeam::channel` with the API slice this workspace uses:
//! [`channel::bounded`] / [`channel::unbounded`] multi-producer
//! **multi-consumer** channels whose [`channel::Receiver`] is cloneable,
//! with correct disconnect semantics (a `recv` on a channel whose senders
//! are all gone returns an error once drained, and vice versa).
//! Implemented with `Mutex` + `Condvar`; throughput is not the point —
//! building without crates.io access is.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Chan<T> {
        state: Mutex<State<T>>,
        cap: Option<usize>,
        /// Signalled when an item arrives or all senders disconnect.
        recv_ready: Condvar,
        /// Signalled when space frees up or all receivers disconnect.
        send_ready: Condvar,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone.
    #[derive(PartialEq, Eq, Clone, Copy)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    impl<T: Send> std::error::Error for SendError<T> {}

    /// Error returned by [`Receiver::recv`] on a drained, disconnected
    /// channel.
    #[derive(Debug, PartialEq, Eq, Clone, Copy)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, PartialEq, Eq, Clone, Copy)]
    pub enum RecvTimeoutError {
        /// Nothing arrived within the timeout.
        Timeout,
        /// The channel is drained and all senders are gone.
        Disconnected,
    }

    impl fmt::Display for RecvTimeoutError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                Self::Timeout => f.write_str("timed out waiting on receive"),
                Self::Disconnected => f.write_str("channel is empty and disconnected"),
            }
        }
    }

    impl std::error::Error for RecvTimeoutError {}

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, PartialEq, Eq, Clone, Copy)]
    pub enum TryRecvError {
        /// The channel is currently empty.
        Empty,
        /// The channel is drained and all senders are gone.
        Disconnected,
    }

    impl fmt::Display for TryRecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                Self::Empty => f.write_str("channel is empty"),
                Self::Disconnected => f.write_str("channel is empty and disconnected"),
            }
        }
    }

    impl std::error::Error for TryRecvError {}

    /// The sending half; cloneable (multi-producer).
    pub struct Sender<T> {
        chan: Arc<Chan<T>>,
    }

    /// The receiving half; cloneable (multi-consumer).
    pub struct Receiver<T> {
        chan: Arc<Chan<T>>,
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    /// Creates a channel holding at most `cap` in-flight messages.
    ///
    /// `bounded(0)` is approximated by capacity 1 (the workspace never
    /// creates rendezvous channels).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        new_chan(Some(cap.max(1)))
    }

    /// Creates a channel with unlimited buffering.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        new_chan(None)
    }

    fn new_chan<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let chan = Arc::new(Chan {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            cap,
            recv_ready: Condvar::new(),
            send_ready: Condvar::new(),
        });
        (
            Sender {
                chan: Arc::clone(&chan),
            },
            Receiver { chan },
        )
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.chan.state.lock().unwrap().senders += 1;
            Self {
                chan: Arc::clone(&self.chan),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = self.chan.state.lock().unwrap();
            state.senders -= 1;
            if state.senders == 0 {
                self.chan.recv_ready.notify_all();
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.chan.state.lock().unwrap().receivers += 1;
            Self {
                chan: Arc::clone(&self.chan),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut state = self.chan.state.lock().unwrap();
            state.receivers -= 1;
            if state.receivers == 0 {
                self.chan.send_ready.notify_all();
            }
        }
    }

    impl<T> Sender<T> {
        /// Sends `msg`, blocking while a bounded channel is full.
        ///
        /// # Errors
        ///
        /// Returns the message if every receiver has been dropped.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            let mut state = self.chan.state.lock().unwrap();
            loop {
                if state.receivers == 0 {
                    return Err(SendError(msg));
                }
                match self.chan.cap {
                    Some(cap) if state.queue.len() >= cap => {
                        state = self.chan.send_ready.wait(state).unwrap();
                    }
                    _ => break,
                }
            }
            state.queue.push_back(msg);
            self.chan.recv_ready.notify_one();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        /// Receives the next message, blocking until one arrives.
        ///
        /// # Errors
        ///
        /// Fails once the channel is drained and all senders are gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = self.chan.state.lock().unwrap();
            loop {
                if let Some(msg) = state.queue.pop_front() {
                    self.chan.send_ready.notify_one();
                    return Ok(msg);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = self.chan.recv_ready.wait(state).unwrap();
            }
        }

        /// Receives the next message, waiting up to `timeout`.
        ///
        /// # Errors
        ///
        /// [`RecvTimeoutError::Timeout`] if nothing arrived in time;
        /// [`RecvTimeoutError::Disconnected`] once drained with no senders.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut state = self.chan.state.lock().unwrap();
            loop {
                if let Some(msg) = state.queue.pop_front() {
                    self.chan.send_ready.notify_one();
                    return Ok(msg);
                }
                if state.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (next, timed_out) = self
                    .chan
                    .recv_ready
                    .wait_timeout(state, deadline - now)
                    .unwrap();
                state = next;
                if timed_out.timed_out() && state.queue.is_empty() && state.senders > 0 {
                    return Err(RecvTimeoutError::Timeout);
                }
            }
        }

        /// Receives a message if one is already queued.
        ///
        /// # Errors
        ///
        /// [`TryRecvError::Empty`] when nothing is queued;
        /// [`TryRecvError::Disconnected`] once drained with no senders.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut state = self.chan.state.lock().unwrap();
            if let Some(msg) = state.queue.pop_front() {
                self.chan.send_ready.notify_one();
                return Ok(msg);
            }
            if state.senders == 0 {
                return Err(TryRecvError::Disconnected);
            }
            Err(TryRecvError::Empty)
        }

        /// Number of messages currently queued.
        pub fn len(&self) -> usize {
            self.chan.state.lock().unwrap().queue.len()
        }

        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::thread;

        #[test]
        fn fifo_and_disconnect() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            drop(tx);
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Ok(2));
            assert_eq!(rx.recv(), Err(RecvError));
        }

        #[test]
        fn cloned_receivers_share_the_queue() {
            let (tx, rx) = unbounded();
            let rx2 = rx.clone();
            for i in 0..100 {
                tx.send(i).unwrap();
            }
            drop(tx);
            let a = thread::spawn(move || {
                let mut got = 0;
                while rx.recv().is_ok() {
                    got += 1;
                }
                got
            });
            let b = thread::spawn(move || {
                let mut got = 0;
                while rx2.recv().is_ok() {
                    got += 1;
                }
                got
            });
            assert_eq!(a.join().unwrap() + b.join().unwrap(), 100);
        }

        #[test]
        fn bounded_blocks_until_space() {
            let (tx, rx) = bounded(1);
            tx.send(1).unwrap();
            let t = thread::spawn(move || tx.send(2).unwrap());
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Ok(2));
            t.join().unwrap();
        }

        #[test]
        fn timeout_fires_on_quiet_channel() {
            let (tx, rx) = unbounded::<u8>();
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(10)),
                Err(RecvTimeoutError::Timeout)
            );
            drop(tx);
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(10)),
                Err(RecvTimeoutError::Disconnected)
            );
        }

        #[test]
        fn send_fails_with_no_receivers() {
            let (tx, rx) = unbounded();
            drop(rx);
            assert_eq!(tx.send(7), Err(SendError(7)));
        }
    }
}
