//! Offline stand-in for the `bytes` crate.
//!
//! Provides the [`Bytes`] type with the API slice this workspace uses: a
//! cheaply cloneable, immutable, shared byte buffer.  Backed by
//! `Arc<[u8]>`; `from_static` copies (correctness over zero-copy — this
//! shim exists so the build works without crates.io access).

use std::borrow::Borrow;
use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::Deref;
use std::sync::Arc;

/// A cheaply cloneable immutable byte buffer.
#[derive(Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self {
            data: Arc::from(&[][..]),
        }
    }

    /// Creates a buffer by copying `slice`.
    pub fn copy_from_slice(slice: &[u8]) -> Self {
        Self {
            data: Arc::from(slice),
        }
    }

    /// Creates a buffer from a static slice (copied in this shim).
    pub fn from_static(slice: &'static [u8]) -> Self {
        Self::copy_from_slice(slice)
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Returns a copy of the requested sub-range as a new buffer.
    pub fn slice(&self, range: impl std::ops::RangeBounds<usize>) -> Self {
        use std::ops::Bound;
        let start = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.data.len(),
        };
        Self::copy_from_slice(&self.data[start..end])
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.data.to_vec()
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Self::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Self { data: Arc::from(v) }
    }
}

impl From<Box<[u8]>> for Bytes {
    fn from(v: Box<[u8]>) -> Self {
        Self { data: Arc::from(v) }
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Self::from(s.into_bytes())
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(slice: &'static [u8]) -> Self {
        Self::from_static(slice)
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Self {
        Self::from_static(s.as_bytes())
    }
}

impl From<Bytes> for Vec<u8> {
    fn from(b: Bytes) -> Self {
        b.to_vec()
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Self {
        Self::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self[..] == other[..]
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self[..] == *other
    }
}

impl PartialEq<Bytes> for [u8] {
    fn eq(&self, other: &Bytes) -> bool {
        *self == other[..]
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self[..] == **other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self[..] == other[..]
    }
}

impl PartialEq<Bytes> for Vec<u8> {
    fn eq(&self, other: &Bytes) -> bool {
        self[..] == other[..]
    }
}

impl PartialEq<str> for Bytes {
    fn eq(&self, other: &str) -> bool {
        self[..] == *other.as_bytes()
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> Ordering {
        self[..].cmp(&other[..])
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self[..].hash(state);
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.iter() {
            if (b' '..=b'~').contains(&b) && b != b'"' && b != b'\\' {
                write!(f, "{}", b as char)?;
            } else {
                write!(f, "\\x{b:02x}")?;
            }
        }
        write!(f, "\"")
    }
}

impl IntoIterator for Bytes {
    type Item = u8;
    type IntoIter = std::vec::IntoIter<u8>;

    fn into_iter(self) -> Self::IntoIter {
        self.to_vec().into_iter()
    }
}

impl<'a> IntoIterator for &'a Bytes {
    type Item = &'a u8;
    type IntoIter = std::slice::Iter<'a, u8>;

    fn into_iter(self) -> Self::IntoIter {
        self.data.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_equality() {
        let a = Bytes::from(vec![1, 2, 3]);
        let b = Bytes::copy_from_slice(&[1, 2, 3]);
        assert_eq!(a, b);
        assert_eq!(a.len(), 3);
        assert_eq!(&a[..], &[1, 2, 3]);
        assert_eq!(a, vec![1u8, 2, 3]);
    }

    #[test]
    fn ordering_and_hash_follow_slice() {
        use std::collections::HashMap;
        let mut m = HashMap::new();
        m.insert(Bytes::from_static(b"k"), 1);
        assert_eq!(m.get(&Bytes::copy_from_slice(b"k")), Some(&1));
        assert!(Bytes::from_static(b"a") < Bytes::from_static(b"b"));
    }

    #[test]
    fn debug_is_printable() {
        let s = format!("{:?}", Bytes::from_static(b"ab\x01"));
        assert_eq!(s, "b\"ab\\x01\"");
    }
}
