//! # Ripple
//!
//! A Rust reproduction of *Ripple: Improved Architecture and Programming
//! Model for Bulk Synchronous Parallel Style of Analytics* (ICDCS 2013):
//! a middleware for distributed data analytics built around two ideas —
//!
//! 1. a **limited generic interface to a fundamental storage+compute
//!    layer** (a key/value store that also places computation, plus a
//!    message-queuing facility), and
//! 2. an **enhanced BSP programming model** (K/V EBSP) that recognizes the
//!    iterative structure of many analytics: selective enablement,
//!    factored component state, combiners, aggregators, broadcast data,
//!    direct output — and, for jobs that declare the right properties,
//!    execution with *no synchronization barriers at all*.
//!
//! This facade crate re-exports the whole workspace:
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`wire`] | `ripple-wire` | binary marshalling codec |
//! | [`kv`] | `ripple-kv` | key/value store + compute-placement SPI |
//! | [`store`] | `ripple-store-mem` | the in-process partitioned "debugging store" |
//! | [`store_simple`] | `ripple-store-simple` | a minimal single-map reference store |
//! | [`store_disk`] | `ripple-store-disk` | the durable WAL-backed store (cross-restart resume) |
//! | [`store_net`] | `ripple-store-net` | TCP part servers + the networked client store |
//! | [`mq`] | `ripple-mq` | queue sets (table-backed and channel-backed) |
//! | [`ebsp`] | `ripple-core` | the K/V EBSP programming model and engines |
//! | [`mapreduce`] | `ripple-mapreduce` | (iterated) MapReduce atop K/V EBSP |
//! | [`graph`] | `ripple-graph` | Graph EBSP, generators, PageRank, SSSP |
//! | [`summa`] | `ripple-summa` | SUMMA dense matrix multiplication |
//! | [`server`] | `ripple-server` | resident multi-tenant job service + serving-mode SSSP |
//!
//! See `examples/quickstart.rs` for a five-minute tour.

pub use ripple_core as ebsp;
pub use ripple_graph as graph;
pub use ripple_kv as kv;
pub use ripple_mapreduce as mapreduce;
pub use ripple_mq as mq;
pub use ripple_server as server;
pub use ripple_store_disk as store_disk;
pub use ripple_store_mem as store;
pub use ripple_store_net as store_net;
pub use ripple_store_simple as store_simple;
pub use ripple_summa as summa;
pub use ripple_wire as wire;

/// The commonly used subset of the API, for glob import in examples.
pub mod prelude {
    pub use ripple_core::{
        export_state_table, AggValue, Aggregate, AggregateSnapshot, CollectingExporter,
        ComputeContext, EbspError, ExecMode, Exporter, FnLoader, Job, JobProperties, JobRunner,
        LoadSink, Loader, PairsLoader, QueueKind, RetryPolicy, RunOptions, RunOutcome,
    };
    pub use ripple_kv::{KvStore, PartId, RoutedKey, Table, TableSpec, TaskRegistry};
    pub use ripple_server::{JobServer, JobSpec, ServerConfig, ServingSssp};
    pub use ripple_store_mem::MemStore;
    pub use ripple_store_net::{LoopbackCluster, NetStore, PartServer};
}
